//! Longest-common-prefix arrays via chunked Φ-Kasai.
//!
//! Kasai's algorithm computes PLCP (LCP by text position) exploiting
//! `PLCP[i] >= PLCP[i-1] - 1`, which makes it inherently sequential. The
//! parallel variant here splits positions into chunks and restarts the
//! `h` counter at each chunk head: still correct (the inequality is only a
//! work-saving device), embarrassingly parallel across chunks, and close
//! to linear work on natural text. This is the same family of compromise
//! PBBS makes for its LCP.

use rayon::prelude::*;

/// PLCP array: `plcp[i]` = LCP of the suffix at text position `i` with its
/// lexicographic predecessor (0 for the lexicographically first suffix).
pub fn plcp(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n, "suffix array length mismatch");
    if n == 0 {
        return Vec::new();
    }
    // rank = inverse SA; phi[i] = suffix preceding i in SA order.
    let mut rank = vec![0u32; n];
    for (j, &i) in sa.iter().enumerate() {
        rank[i as usize] = j as u32;
    }
    const NONE: u32 = u32::MAX;
    let phi: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let j = rank[i];
            if j == 0 {
                NONE
            } else {
                sa[j as usize - 1]
            }
        })
        .collect();
    // Chunked Kasai over text positions.
    let chunk = 1 << 14;
    let mut out = vec![0u32; n];
    out.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(c, chunk_out)| {
            let base = c * chunk;
            let mut h = 0usize;
            for (k, slot) in chunk_out.iter_mut().enumerate() {
                let i = base + k;
                let j = phi[i];
                if j == NONE {
                    h = 0;
                    *slot = 0;
                    continue;
                }
                let j = j as usize;
                while i + h < n && j + h < n && text[i + h] == text[j + h] {
                    h += 1;
                }
                *slot = h as u32;
                h = h.saturating_sub(1);
            }
        });
    out
}

/// LCP array in suffix-array order: `lcp[j]` = LCP of `sa[j]` and
/// `sa[j-1]` (`lcp[0] = 0`).
pub fn lcp_from_sa(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let p = plcp(text, sa);
    sa.par_iter().map(|&i| p[i as usize]).collect()
}

/// Naive reference for tests.
pub fn lcp_naive(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; sa.len()];
    for j in 1..sa.len() {
        let (a, b) = (sa[j - 1] as usize, sa[j] as usize);
        let mut h = 0;
        while a + h < text.len() && b + h < text.len() && text[a + h] == text[b + h] {
            h += 1;
        }
        out[j] = h as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix_array::{suffix_array, suffix_array_naive};
    use rpb_fearless::ExecMode;

    #[test]
    fn banana_lcp() {
        let t = b"banana";
        let sa = suffix_array_naive(t);
        // SA: 5(a) 3(ana) 1(anana) 0(banana) 4(na) 2(nana)
        assert_eq!(lcp_naive(t, &sa), vec![0, 1, 3, 0, 0, 2]);
        assert_eq!(lcp_from_sa(t, &sa), vec![0, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn random_text_matches_naive() {
        let t: Vec<u8> = (0..5000u64)
            .map(|i| (rpb_parlay::random::hash64(i) % 3) as u8 + b'a')
            .collect();
        let sa = suffix_array(&t, ExecMode::Checked);
        assert_eq!(lcp_from_sa(&t, &sa), lcp_naive(&t, &sa));
    }

    #[test]
    fn text_crossing_chunk_boundaries() {
        // Bigger than one 16Ki chunk to exercise the chunked restart.
        let t = crate::gen::wiki_like_text(50_000, 3);
        let sa = suffix_array(&t, ExecMode::Unsafe);
        assert_eq!(lcp_from_sa(&t, &sa), lcp_naive(&t, &sa));
    }

    #[test]
    fn all_same_char() {
        let t = vec![b'z'; 100];
        let sa = suffix_array_naive(&t);
        let lcp = lcp_from_sa(&t, &sa);
        // SA is n-1, n-2, ..., 0; LCP[j] = j after the first.
        for (j, &l) in lcp.iter().enumerate() {
            assert_eq!(l as usize, j.saturating_sub(0).min(j));
        }
    }

    #[test]
    fn empty() {
        assert!(plcp(b"", &[]).is_empty());
        assert!(lcp_from_sa(b"", &[]).is_empty());
    }
}
