//! Property-based tests for the text substrate.

use proptest::prelude::*;
use rpb_fearless::ExecMode;
use rpb_text::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel SA equals the naive sorted-suffix order on arbitrary
    /// bytes, for all three modes.
    #[test]
    fn sa_matches_naive(v in proptest::collection::vec(any::<u8>(), 0..300)) {
        let want = suffix_array_naive(&v);
        for mode in [ExecMode::Unsafe, ExecMode::Checked, ExecMode::Sync] {
            prop_assert_eq!(suffix_array(&v, mode), want.clone());
        }
        prop_assert_eq!(suffix_array_seq(&v), want);
    }

    /// The LCP array truly is the longest common prefix of SA neighbours.
    #[test]
    fn lcp_is_exact(v in proptest::collection::vec(0u8..4, 0..400)) {
        let sa = suffix_array(&v, ExecMode::Checked);
        let lcp = lcp_from_sa(&v, &sa);
        for j in 1..sa.len() {
            let (a, b) = (sa[j - 1] as usize, sa[j] as usize);
            let l = lcp[j] as usize;
            prop_assert_eq!(&v[a..a + l], &v[b..b + l], "match shorter than claimed");
            // Maximality: the next byte differs or a suffix ends.
            let (an, bn) = (a + l, b + l);
            prop_assert!(
                an >= v.len() || bn >= v.len() || v[an] != v[bn],
                "claimed LCP {} not maximal at rank {}", l, j
            );
        }
    }

    /// BWT encode/decode round-trips arbitrary sentinel-free bytes.
    #[test]
    fn bwt_round_trip(v in proptest::collection::vec(1u8..=255, 0..400)) {
        let bwt = bwt_encode(&v, ExecMode::Checked);
        prop_assert_eq!(bwt.len(), v.len() + 1);
        prop_assert_eq!(bwt_decode(&bwt), Ok(v.clone()));
        prop_assert_eq!(bwt::bwt_decode_seq(&bwt), Ok(v));
    }

    /// The BWT is a permutation of text + sentinel.
    #[test]
    fn bwt_is_permutation(v in proptest::collection::vec(1u8..=255, 0..400)) {
        let bwt = bwt_encode(&v, ExecMode::Unsafe);
        let mut a = bwt.clone();
        let mut b = v.clone();
        b.push(0);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// LF mapping is always a permutation.
    #[test]
    fn lf_is_permutation(v in proptest::collection::vec(1u8..=255, 1..400)) {
        let bwt = bwt_encode(&v, ExecMode::Unsafe);
        let lf = lf_mapping(&bwt);
        let mut seen = vec![false; lf.len()];
        for &x in &lf {
            prop_assert!(!seen[x]);
            seen[x] = true;
        }
    }
}
