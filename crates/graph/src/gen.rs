//! Input-graph generators reproducing the paper's Table 2 families.

use rayon::prelude::*;

use rpb_parlay::random::Random;

use crate::csr::{Graph, WeightedGraph};

/// Which Table 2 family a generated graph imitates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// `link`: high-skew power-law web graph, avg degree ~20.
    Link,
    /// `rmat`: standard R-MAT, avg degree ~6.
    Rmat,
    /// `road`: low-degree high-diameter road network, avg degree ~2.4.
    Road,
}

impl GraphKind {
    /// The paper's shorthand name.
    pub fn shorthand(self) -> &'static str {
        match self {
            GraphKind::Link => "link",
            GraphKind::Rmat => "rmat",
            GraphKind::Road => "road",
        }
    }

    /// Builds the graph at a given vertex scale.
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            // Hyperlink-like: skewed R-MAT with avg degree 20.
            GraphKind::Link => rmat_with(n, n * 10, 0.62, 0.17, 0.17, seed),
            GraphKind::Rmat => rmat(n, n * 3, seed),
            GraphKind::Road => grid_road(n, seed),
        }
    }

    /// Weighted version (uniform weights in `1..=max_w`).
    pub fn build_weighted(self, n: usize, max_w: u32, seed: u64) -> WeightedGraph {
        add_weights(self.build(n, seed), max_w, seed ^ 0xA5A5_5A5A)
    }
}

/// Standard R-MAT (Chakrabarti et al., a=0.57 b=0.19 c=0.19 d=0.05) over
/// `n` vertices (rounded up to a power of two) with `m` undirected edges.
pub fn rmat(n: usize, m: usize, seed: u64) -> Graph {
    rmat_with(n, m, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit quadrant probabilities (d = 1-a-b-c).
pub fn rmat_with(n: usize, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    let levels = (n.max(2) as f64).log2().ceil() as u32;
    let size = 1usize << levels;
    let r = Random::new(seed);
    let edges: Vec<(u32, u32)> = (0..m as u64)
        .into_par_iter()
        .map(|e| {
            let (mut u, mut v) = (0usize, 0usize);
            for l in 0..levels {
                // Independent draw per level, counter-based.
                let x = r.ith_rand_f64(e * 64 + l as u64);
                let (du, dv) = if x < a {
                    (0, 0)
                } else if x < a + b {
                    (0, 1)
                } else if x < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            ((u % size) as u32, (v % size) as u32)
        })
        .collect();
    Graph::undirected_from_edges(size, &edges)
}

/// Road-like graph: a √n × √n grid, **connected by construction** — a
/// comb backbone (every vertical street, plus the full southern
/// east-west road) with a ~20% sprinkle of other horizontal segments and
/// a few diagonal shortcuts. Average degree lands near the paper's 2.4
/// arcs/vertex; diameter is Θ(√n), matching road networks'
/// high-diameter regime.
pub fn grid_road(n: usize, seed: u64) -> Graph {
    let side = (n as f64).sqrt().ceil() as usize;
    let side = side.max(2);
    let n = side * side;
    let idx = |x: usize, y: usize| (x * side + y) as u32;
    let r = Random::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n + n / 4);
    for x in 0..side {
        for y in 0..side {
            // Backbone: all vertical streets (connects each column)...
            if y + 1 < side {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
            if x + 1 < side {
                // ...plus the southern road (connects the columns), and a
                // thin random selection of other horizontal segments.
                if y == 0 || r.ith_rand(idx(x, y) as u64) % 10 < 2 {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
            }
        }
    }
    // Diagonal shortcuts: ~2% of vertices.
    for k in 0..(n / 50).max(1) as u64 {
        let x = (r.ith_rand(1_000_000 + 2 * k) % (side as u64 - 1)) as usize;
        let y = (r.ith_rand(1_000_001 + 2 * k) % (side as u64 - 1)) as usize;
        edges.push((idx(x, y), idx(x + 1, y + 1)));
    }
    Graph::undirected_from_edges(n, &edges)
}

/// Erdős–Rényi-style uniform random graph with `m` undirected edges.
pub fn uniform_random(n: usize, m: usize, seed: u64) -> Graph {
    let r = Random::new(seed);
    let edges: Vec<(u32, u32)> = (0..m as u64)
        .into_par_iter()
        .map(|e| {
            let u = (r.ith_rand(2 * e) % n as u64) as u32;
            let v = (r.ith_rand(2 * e + 1) % n as u64) as u32;
            (u, v)
        })
        .collect();
    Graph::undirected_from_edges(n, &edges)
}

/// Attaches deterministic uniform weights in `1..=max_w` to a graph,
/// symmetric for undirected arc pairs (weight depends on the unordered
/// endpoints).
pub fn add_weights(g: Graph, max_w: u32, seed: u64) -> WeightedGraph {
    let r = Random::new(seed);
    let weights: Vec<u32> = (0..g.num_vertices())
        .into_par_iter()
        .flat_map_iter(|u| {
            let r = r;
            g.neighbors(u).iter().map(move |&v| {
                let (a, b) = if (u as u32) < v {
                    (u as u32, v)
                } else {
                    (v, u as u32)
                };
                (r.ith_rand(((a as u64) << 32) | b as u64) % max_w as u64) as u32 + 1
            })
        })
        .collect();
    WeightedGraph { graph: g, weights }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_has_requested_size() {
        let g = rmat(1000, 3000, 1);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_arcs(), 6000);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(4096, 40_000, 2);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 8.0 * avg,
            "not skewed: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn road_has_low_degree_and_high_diameter_proxy() {
        let g = grid_road(10_000, 3);
        let avg = g.avg_degree();
        assert!(
            avg > 1.5 && avg < 3.5,
            "road avg degree {avg} out of family range"
        );
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg <= 10, "road max degree {max_deg} too high");
    }

    #[test]
    fn road_is_connected_with_large_diameter() {
        let g = grid_road(10_000, 3);
        assert_eq!(
            crate::seq::num_components(&g),
            1,
            "road graph must be connected"
        );
        let dist = crate::seq::bfs(&g, 0);
        let ecc = dist
            .iter()
            .filter(|&&d| d != crate::seq::INF)
            .max()
            .copied()
            .unwrap();
        // Grid diameter is Θ(√n) = Θ(100) here.
        assert!(ecc >= 50, "eccentricity {ecc} too small for a road graph");
    }

    #[test]
    fn link_family_is_denser_than_rmat() {
        let link = GraphKind::Link.build(2048, 1);
        let rm = GraphKind::Rmat.build(2048, 1);
        assert!(link.avg_degree() > rm.avg_degree());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rmat(512, 2000, 9);
        let b = rmat(512, 2000, 9);
        assert_eq!(a, b);
        let c = grid_road(400, 5);
        let d = grid_road(400, 5);
        assert_eq!(c, d);
    }

    #[test]
    fn weights_are_symmetric_and_in_range() {
        let wg = GraphKind::Road.build_weighted(400, 100, 7);
        for u in 0..wg.num_vertices() {
            for (v, w) in wg.neighbors(u) {
                assert!((1..=100).contains(&w));
                // Find the reverse arc weight.
                let back = wg
                    .neighbors(v as usize)
                    .find(|&(x, _)| x as usize == u)
                    .map(|(_, w2)| w2);
                assert_eq!(back, Some(w), "asymmetric weight on ({u},{v})");
            }
        }
    }

    #[test]
    fn uniform_random_shape() {
        let g = uniform_random(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_arcs(), 1000);
    }
}
