//! Graph serialization: PBBS adjacency format and DIMACS-style edge
//! lists, so generated inputs can be saved, inspected, and re-loaded
//! (PBBS workflows are file-driven; RPB kept that shape).

use std::fmt::Write as _;
use std::path::Path;

use crate::csr::{Graph, WeightedGraph};

/// Serializes to the PBBS `AdjacencyGraph` text format:
/// header, `n`, `m`, then `n` offsets and `m` targets, one per line.
pub fn to_adjacency_string(g: &Graph) -> String {
    let mut out = String::with_capacity(16 * (g.num_vertices() + g.num_arcs()));
    out.push_str("AdjacencyGraph\n");
    let _ = writeln!(out, "{}", g.num_vertices());
    let _ = writeln!(out, "{}", g.num_arcs());
    for v in 0..g.num_vertices() {
        let _ = writeln!(out, "{}", g.offsets[v]);
    }
    for &t in &g.adj {
        let _ = writeln!(out, "{t}");
    }
    out
}

/// Parses the PBBS `AdjacencyGraph` text format.
///
/// # Errors
/// Returns a message describing the first malformed line.
pub fn from_adjacency_string(s: &str) -> Result<Graph, String> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty input")?;
    if header.trim() != "AdjacencyGraph" {
        return Err(format!("bad header: {header:?}"));
    }
    let mut next_num = |what: &str| -> Result<usize, String> {
        lines
            .next()
            .ok_or_else(|| format!("missing {what}"))?
            .trim()
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    let n = next_num("vertex count")?;
    let m = next_num("arc count")?;
    let mut offsets = Vec::with_capacity(n + 1);
    for i in 0..n {
        offsets.push(next_num(&format!("offset {i}"))?);
    }
    offsets.push(m);
    let mut adj = Vec::with_capacity(m);
    for i in 0..m {
        let t = next_num(&format!("target {i}"))?;
        if t >= n {
            return Err(format!("target {t} out of range at arc {i}"));
        }
        adj.push(t as u32);
    }
    // Validate monotone offsets.
    if let Some(k) = rpb_parlay::slice_util::check_monotone(&offsets, m) {
        return Err(format!("offsets not monotone at index {k}"));
    }
    Ok(Graph { offsets, adj })
}

/// Serializes a weighted graph as DIMACS `.gr` (`p sp n m` + `a u v w`
/// lines, 1-indexed, one line per stored arc).
pub fn to_dimacs_string(g: &WeightedGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p sp {} {}", g.num_vertices(), g.num_arcs());
    for u in 0..g.num_vertices() {
        for (v, w) in g.neighbors(u) {
            let _ = writeln!(out, "a {} {} {}", u + 1, v + 1, w);
        }
    }
    out
}

/// Parses DIMACS `.gr` into a weighted graph (directed arcs as listed).
///
/// # Errors
/// Returns a message describing the first malformed line.
pub fn from_dimacs_string(s: &str) -> Result<WeightedGraph, String> {
    let mut n = None;
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (lineno, line) in s.lines().enumerate() {
        let line = line.trim();
        let mut parts = line.split_whitespace();
        match parts.next() {
            None | Some("c") => continue,
            Some("p") => {
                let _sp = parts.next();
                let nv: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or(format!("line {}: bad p line", lineno + 1))?;
                n = Some(nv);
            }
            Some("a") => {
                let mut get = || -> Result<u64, String> {
                    parts
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or(format!("line {}: bad a line", lineno + 1))
                };
                let (u, v, w) = (get()?, get()?, get()?);
                if u == 0 || v == 0 {
                    return Err(format!("line {}: DIMACS is 1-indexed", lineno + 1));
                }
                edges.push((u as u32 - 1, v as u32 - 1, w as u32));
            }
            Some(other) => return Err(format!("line {}: unknown tag {other}", lineno + 1)),
        }
    }
    let n = n.ok_or("missing p line")?;
    if let Some(&(u, v, _)) = edges
        .iter()
        .find(|&&(u, v, _)| u as usize >= n || v as usize >= n)
    {
        return Err(format!("edge ({u},{v}) out of range for {n} vertices"));
    }
    Ok(WeightedGraph::from_edges(n, &edges))
}

/// Writes a graph to a file in PBBS adjacency format.
pub fn write_adjacency(g: &Graph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_adjacency_string(g))
}

/// Reads a graph from a PBBS adjacency file.
pub fn read_adjacency(path: &Path) -> Result<Graph, String> {
    let s = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_adjacency_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{add_weights, uniform_random};

    #[test]
    fn adjacency_round_trip() {
        let g = uniform_random(100, 300, 1);
        let s = to_adjacency_string(&g);
        let g2 = from_adjacency_string(&s).expect("parse");
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_rejects_bad_header() {
        assert!(from_adjacency_string("WeightedAdjacencyGraph\n1\n0\n0\n").is_err());
    }

    #[test]
    fn adjacency_rejects_out_of_range_target() {
        let s = "AdjacencyGraph\n2\n1\n0\n1\n5\n";
        assert!(from_adjacency_string(s).is_err());
    }

    #[test]
    fn dimacs_round_trip() {
        let wg = add_weights(uniform_random(50, 120, 2), 100, 3);
        let s = to_dimacs_string(&wg);
        let wg2 = from_dimacs_string(&s).expect("parse");
        assert_eq!(wg.num_vertices(), wg2.num_vertices());
        assert_eq!(wg.num_arcs(), wg2.num_arcs());
        for u in 0..wg.num_vertices() {
            let a: Vec<(u32, u32)> = wg.neighbors(u).collect();
            let b: Vec<(u32, u32)> = wg2.neighbors(u).collect();
            assert_eq!(a, b, "vertex {u}");
        }
    }

    #[test]
    fn dimacs_skips_comments() {
        let s = "c a comment\np sp 2 1\nc another\na 1 2 7\n";
        let wg = from_dimacs_string(s).expect("parse");
        assert_eq!(wg.num_vertices(), 2);
        let n0: Vec<(u32, u32)> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 7)]);
    }

    #[test]
    fn dimacs_rejects_zero_index() {
        assert!(from_dimacs_string("p sp 2 1\na 0 1 5\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = uniform_random(30, 60, 5);
        let dir = std::env::temp_dir().join("rpb_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("g.adj");
        write_adjacency(&g, &path).expect("write");
        let g2 = read_adjacency(&path).expect("read");
        assert_eq!(g, g2);
        let _ = std::fs::remove_file(&path);
    }
}
