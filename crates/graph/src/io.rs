//! Graph serialization: PBBS adjacency format and DIMACS-style edge
//! lists, so generated inputs can be saved, inspected, and re-loaded
//! (PBBS workflows are file-driven; RPB kept that shape).

use std::fmt::{self, Write as _};
use std::path::Path;

use crate::csr::{Graph, WeightedGraph};

/// A parse (or read) failure, pinpointing the offending source line when
/// one is attributable.
///
/// Both text parsers reject malformed input — truncated lines, trailing
/// garbage, out-of-range vertex ids, non-monotone offsets — with the
/// 1-indexed line number of the first offending line, so corrupted input
/// files are diagnosable instead of being silently misread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphParseError {
    /// 1-indexed line number in the source text, when attributable (I/O
    /// errors and whole-input failures such as truncation have none).
    pub line: Option<usize>,
    /// What was wrong with it.
    pub reason: String,
}

impl GraphParseError {
    fn at(line: usize, reason: impl Into<String>) -> Self {
        Self {
            line: Some(line),
            reason: reason.into(),
        }
    }

    fn whole(reason: impl Into<String>) -> Self {
        Self {
            line: None,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.reason),
            None => f.write_str(&self.reason),
        }
    }
}

impl std::error::Error for GraphParseError {}

/// Serializes to the PBBS `AdjacencyGraph` text format:
/// header, `n`, `m`, then `n` offsets and `m` targets, one per line.
pub fn to_adjacency_string(g: &Graph) -> String {
    let mut out = String::with_capacity(16 * (g.num_vertices() + g.num_arcs()));
    out.push_str("AdjacencyGraph\n");
    let _ = writeln!(out, "{}", g.num_vertices());
    let _ = writeln!(out, "{}", g.num_arcs());
    for v in 0..g.num_vertices() {
        let _ = writeln!(out, "{}", g.offsets[v]);
    }
    for &t in &g.adj {
        let _ = writeln!(out, "{t}");
    }
    out
}

/// Parses the PBBS `AdjacencyGraph` text format.
///
/// # Errors
/// Returns a [`GraphParseError`] naming the first offending line for a
/// bad header, an unparsable number, an out-of-range target, a
/// non-monotone offset, or trailing garbage; truncated input is a
/// whole-input error (no single line to blame).
pub fn from_adjacency_string(s: &str) -> Result<Graph, GraphParseError> {
    // Blank lines are skipped but keep their place in the numbering, so
    // errors point at real source lines.
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());
    let (hline, header) = lines
        .next()
        .ok_or_else(|| GraphParseError::whole("empty input"))?;
    if header != "AdjacencyGraph" {
        return Err(GraphParseError::at(
            hline,
            format!("bad header {header:?} (want \"AdjacencyGraph\")"),
        ));
    }
    let mut next_num = |what: &str| -> Result<(usize, usize), GraphParseError> {
        let (ln, l) = lines
            .next()
            .ok_or_else(|| GraphParseError::whole(format!("truncated input: missing {what}")))?;
        let v = l
            .parse()
            .map_err(|e| GraphParseError::at(ln, format!("bad {what} {l:?}: {e}")))?;
        Ok((ln, v))
    };
    let (_, n) = next_num("vertex count")?;
    let (_, m) = next_num("arc count")?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut prev = 0usize;
    for i in 0..n {
        let (ln, off) = next_num(&format!("offset {i}"))?;
        if off < prev {
            return Err(GraphParseError::at(
                ln,
                format!("offset {off} decreases below the previous offset {prev}"),
            ));
        }
        if off > m {
            return Err(GraphParseError::at(
                ln,
                format!("offset {off} exceeds the arc count {m}"),
            ));
        }
        prev = off;
        offsets.push(off);
    }
    offsets.push(m);
    let mut adj = Vec::with_capacity(m);
    for i in 0..m {
        let (ln, t) = next_num(&format!("target {i}"))?;
        if t >= n {
            return Err(GraphParseError::at(
                ln,
                format!("target {t} out of range for {n} vertices"),
            ));
        }
        adj.push(t as u32);
    }
    if let Some((ln, extra)) = lines.next() {
        return Err(GraphParseError::at(
            ln,
            format!("trailing garbage {extra:?} after the {m} declared targets"),
        ));
    }
    Ok(Graph { offsets, adj })
}

/// Serializes a weighted graph as DIMACS `.gr` (`p sp n m` + `a u v w`
/// lines, 1-indexed, one line per stored arc).
pub fn to_dimacs_string(g: &WeightedGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p sp {} {}", g.num_vertices(), g.num_arcs());
    for u in 0..g.num_vertices() {
        for (v, w) in g.neighbors(u) {
            let _ = writeln!(out, "a {} {} {}", u + 1, v + 1, w);
        }
    }
    out
}

/// Parses DIMACS `.gr` into a weighted graph (directed arcs as listed).
///
/// # Errors
/// Returns a [`GraphParseError`] naming the first offending line for a
/// truncated `p`/`a` line, trailing fields, an arc before the `p` line, a
/// duplicate `p` line, a 0 or out-of-range vertex id, a weight or vertex
/// count outside the `u32` space, or more arcs than the `p` line
/// declares; too few arcs is a whole-input error.
pub fn from_dimacs_string(s: &str) -> Result<WeightedGraph, GraphParseError> {
    let mut header: Option<(usize, usize)> = None; // (vertices, declared arcs)
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let ln = idx + 1;
        let mut parts = raw.trim().split_whitespace();
        match parts.next() {
            None | Some("c") => continue,
            Some("p") => {
                if header.is_some() {
                    return Err(GraphParseError::at(ln, "duplicate p line"));
                }
                let tag = parts.next().ok_or_else(|| {
                    GraphParseError::at(ln, "truncated p line: missing problem tag")
                })?;
                if tag != "sp" {
                    return Err(GraphParseError::at(
                        ln,
                        format!("unsupported problem tag {tag:?} (want \"sp\")"),
                    ));
                }
                let mut field = |what: &str| -> Result<usize, GraphParseError> {
                    let f = parts.next().ok_or_else(|| {
                        GraphParseError::at(ln, format!("truncated p line: missing {what}"))
                    })?;
                    f.parse()
                        .map_err(|e| GraphParseError::at(ln, format!("bad {what} {f:?}: {e}")))
                };
                let n = field("vertex count")?;
                let m = field("arc count")?;
                if let Some(extra) = parts.next() {
                    return Err(GraphParseError::at(
                        ln,
                        format!("trailing garbage {extra:?} on p line"),
                    ));
                }
                if n > u32::MAX as usize + 1 {
                    return Err(GraphParseError::at(
                        ln,
                        format!("vertex count {n} exceeds the u32 id space"),
                    ));
                }
                header = Some((n, m));
            }
            Some("a") => {
                let (n, m) =
                    header.ok_or_else(|| GraphParseError::at(ln, "arc line before the p line"))?;
                if edges.len() == m {
                    return Err(GraphParseError::at(
                        ln,
                        format!("more arcs than the {m} declared on the p line"),
                    ));
                }
                let mut field = |what: &str| -> Result<u64, GraphParseError> {
                    let f = parts.next().ok_or_else(|| {
                        GraphParseError::at(ln, format!("truncated a line: missing {what}"))
                    })?;
                    f.parse()
                        .map_err(|e| GraphParseError::at(ln, format!("bad {what} {f:?}: {e}")))
                };
                let u = field("tail")?;
                let v = field("head")?;
                let w = field("weight")?;
                if let Some(extra) = parts.next() {
                    return Err(GraphParseError::at(
                        ln,
                        format!("trailing garbage {extra:?} on a line"),
                    ));
                }
                if u == 0 || v == 0 {
                    return Err(GraphParseError::at(
                        ln,
                        "DIMACS vertex ids are 1-indexed; found 0",
                    ));
                }
                if u > n as u64 || v > n as u64 {
                    return Err(GraphParseError::at(
                        ln,
                        format!("arc ({u},{v}) out of range for {n} vertices"),
                    ));
                }
                if w > u64::from(u32::MAX) {
                    return Err(GraphParseError::at(
                        ln,
                        format!("weight {w} exceeds the u32 weight space"),
                    ));
                }
                // u, v ∈ 1..=n ≤ 2^32, so the decrements fit in u32.
                edges.push(((u - 1) as u32, (v - 1) as u32, w as u32));
            }
            Some(other) => {
                return Err(GraphParseError::at(ln, format!("unknown tag {other:?}")));
            }
        }
    }
    let (n, m) = header.ok_or_else(|| GraphParseError::whole("missing p line"))?;
    if edges.len() != m {
        return Err(GraphParseError::whole(format!(
            "p line declares {m} arcs but {} were listed",
            edges.len()
        )));
    }
    Ok(WeightedGraph::from_edges(n, &edges))
}

/// Writes a graph to a file in PBBS adjacency format.
pub fn write_adjacency(g: &Graph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_adjacency_string(g))
}

/// Reads a graph from a PBBS adjacency file.
pub fn read_adjacency(path: &Path) -> Result<Graph, GraphParseError> {
    let s = std::fs::read_to_string(path)
        .map_err(|e| GraphParseError::whole(format!("{}: {e}", path.display())))?;
    from_adjacency_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{add_weights, uniform_random};

    #[test]
    fn adjacency_round_trip() {
        let g = uniform_random(100, 300, 1);
        let s = to_adjacency_string(&g);
        let g2 = from_adjacency_string(&s).expect("parse");
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_rejects_bad_header() {
        assert!(from_adjacency_string("WeightedAdjacencyGraph\n1\n0\n0\n").is_err());
    }

    #[test]
    fn adjacency_rejects_out_of_range_target() {
        let s = "AdjacencyGraph\n2\n1\n0\n1\n5\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(6));
        assert!(err.reason.contains("out of range"), "{err}");
    }

    #[test]
    fn adjacency_errors_point_at_source_lines_past_blanks() {
        // Blank lines are skipped but keep their place in the numbering:
        // the bad target `5` sits on source line 8.
        let s = "AdjacencyGraph\n\n2\n1\n0\n1\n\n5\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(8));
        assert!(err.to_string().starts_with("line 8:"), "{err}");
    }

    #[test]
    fn adjacency_rejects_nonmonotone_offsets_at_the_line() {
        let s = "AdjacencyGraph\n2\n2\n2\n1\n0\n1\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(5));
        assert!(err.reason.contains("decreases"), "{err}");
    }

    #[test]
    fn adjacency_rejects_offset_past_arc_count() {
        let s = "AdjacencyGraph\n2\n1\n0\n9\n0\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(5));
        assert!(err.reason.contains("exceeds"), "{err}");
    }

    #[test]
    fn adjacency_rejects_trailing_garbage() {
        let s = "AdjacencyGraph\n2\n1\n0\n1\n0\nextra\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(7));
        assert!(err.reason.contains("trailing garbage"), "{err}");
    }

    #[test]
    fn adjacency_truncation_is_a_whole_input_error() {
        let s = "AdjacencyGraph\n2\n1\n0\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.reason.contains("offset 1"), "{err}");
        assert!(from_adjacency_string("").unwrap_err().line.is_none());
    }

    #[test]
    fn adjacency_rejects_unparsable_numbers_at_the_line() {
        let s = "AdjacencyGraph\ntwo\n";
        let err = from_adjacency_string(s).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("vertex count"), "{err}");
    }

    #[test]
    fn dimacs_round_trip() {
        let wg = add_weights(uniform_random(50, 120, 2), 100, 3);
        let s = to_dimacs_string(&wg);
        let wg2 = from_dimacs_string(&s).expect("parse");
        assert_eq!(wg.num_vertices(), wg2.num_vertices());
        assert_eq!(wg.num_arcs(), wg2.num_arcs());
        for u in 0..wg.num_vertices() {
            let a: Vec<(u32, u32)> = wg.neighbors(u).collect();
            let b: Vec<(u32, u32)> = wg2.neighbors(u).collect();
            assert_eq!(a, b, "vertex {u}");
        }
    }

    #[test]
    fn dimacs_skips_comments() {
        let s = "c a comment\np sp 2 1\nc another\na 1 2 7\n";
        let wg = from_dimacs_string(s).expect("parse");
        assert_eq!(wg.num_vertices(), 2);
        let n0: Vec<(u32, u32)> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 7)]);
    }

    #[test]
    fn dimacs_rejects_zero_index() {
        let err = from_dimacs_string("p sp 2 1\na 0 1 5\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("1-indexed"), "{err}");
    }

    #[test]
    fn dimacs_rejects_out_of_range_vertex_at_the_line() {
        let err = from_dimacs_string("c hdr\np sp 2 2\na 1 2 3\na 1 5 3\n").unwrap_err();
        assert_eq!(err.line, Some(4));
        assert!(err.reason.contains("out of range"), "{err}");
    }

    #[test]
    fn dimacs_rejects_truncated_lines() {
        let err = from_dimacs_string("p sp 2 1\na 1 2\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("missing weight"), "{err}");
        let err = from_dimacs_string("p sp 2\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.reason.contains("missing arc count"), "{err}");
    }

    #[test]
    fn dimacs_rejects_trailing_fields() {
        let err = from_dimacs_string("p sp 2 1\na 1 2 7 9\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("trailing garbage"), "{err}");
    }

    #[test]
    fn dimacs_rejects_arc_before_p_line() {
        let err = from_dimacs_string("a 1 2 7\np sp 2 1\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.reason.contains("before the p line"), "{err}");
    }

    #[test]
    fn dimacs_rejects_duplicate_p_line() {
        let err = from_dimacs_string("p sp 2 1\np sp 2 1\na 1 2 7\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("duplicate"), "{err}");
    }

    #[test]
    fn dimacs_enforces_the_declared_arc_count() {
        // Too many arcs: caught at the first excess line.
        let err = from_dimacs_string("p sp 2 1\na 1 2 7\na 2 1 7\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.reason.contains("more arcs"), "{err}");
        // Too few arcs: no single line to blame.
        let err = from_dimacs_string("p sp 2 2\na 1 2 7\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.reason.contains("declares 2 arcs"), "{err}");
    }

    #[test]
    fn dimacs_rejects_values_outside_u32() {
        let over = u64::from(u32::MAX) + 1;
        let err = from_dimacs_string(&format!("p sp 2 1\na 1 2 {over}\n")).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("weight"), "{err}");
        let err = from_dimacs_string(&format!("p sp {} 0\n", over + 1)).unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.reason.contains("u32 id space"), "{err}");
    }

    #[test]
    fn dimacs_rejects_unknown_tags_and_missing_p() {
        let err = from_dimacs_string("p sp 2 1\nq 1 2 3\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.reason.contains("unknown tag"), "{err}");
        assert_eq!(
            from_dimacs_string("c only comments\n").unwrap_err().line,
            None
        );
    }

    #[test]
    fn parse_error_display_names_the_line() {
        let e = GraphParseError::at(7, "boom");
        assert_eq!(e.to_string(), "line 7: boom");
        let e = GraphParseError::whole("boom");
        assert_eq!(e.to_string(), "boom");
    }

    #[test]
    fn file_round_trip() {
        let g = uniform_random(30, 60, 5);
        let dir = std::env::temp_dir().join("rpb_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("g.adj");
        write_adjacency(&g, &path).expect("write");
        let g2 = read_adjacency(&path).expect("read");
        assert_eq!(g, g2);
        let _ = std::fs::remove_file(&path);
    }
}
