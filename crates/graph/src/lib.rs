//! # rpb-graph
//!
//! Graph substrate for the RPB suite: compressed sparse row (CSR) graphs,
//! the paper's three input-graph families re-created as generators
//! (Table 2), and sequential reference algorithms that the parallel
//! benchmarks are validated against.
//!
//! | Paper input | Generator here | Properties preserved |
//! |---|---|---|
//! | `link` (Hyperlink2012-hosts) | high-skew R-MAT, avg deg ~20 | power-law degrees, low diameter |
//! | `rmat` (Chakrabarti R-MAT) | standard R-MAT, avg deg 6 | same model, reduced scale |
//! | `road` (Full USA roads) | 2D grid + diagonals, avg deg ~2.4 | low degree, high diameter |

pub mod csr;
pub mod gen;
pub mod io;
pub mod seq;

pub use csr::{prefetch_active, Graph, WeightedGraph};
pub use gen::{grid_road, rmat, uniform_random, GraphKind};
