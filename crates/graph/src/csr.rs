//! Compressed sparse row graphs, unweighted and weighted.
//!
//! The CSR layout is itself an instance of the paper's `RngInd` pattern:
//! vertex `v`'s neighbours live at `adj[offsets[v]..offsets[v+1]]`, a
//! contiguous chunk addressed through a run-time offsets array. Builders
//! here use parlay's scan + scatter machinery.

use rayon::prelude::*;
use std::ops::Range;

use rpb_parlay::scan::scan_inplace_exclusive;
use rpb_parlay::sendptr::SendPtr;

/// True when the traversal kernels should issue software prefetches: the
/// `simd` raw-speed feature is compiled in and runtime dispatch (AVX2
/// present, `RPB_FORCE_SCALAR` unset, no forced-scalar override) agrees.
///
/// Prefetching itself needs nothing beyond baseline SSE; it shares the
/// AVX2 dispatch switch so that one knob — and the scalar/simd
/// differential axis of `rpb verify` — flips the *entire* raw-speed pass.
/// Kernels check once per frontier, not per vertex.
#[inline]
pub fn prefetch_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    {
        rpb_parlay::simd::simd_enabled()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// An unweighted directed graph in CSR form. For undirected graphs both
/// arc directions are stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `n+1` boundaries into `adj`.
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    pub adj: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of stored arcs (2× edges for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Average degree (arcs per vertex).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Builds a CSR graph from an arc list over `n` vertices, in parallel
    /// (counts → scan → scatter). Duplicate arcs and self-loops are kept.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut counts = vec![0usize; n + 1];
        // Parallel per-chunk counting into per-chunk histograms would need
        // n-sized buffers per chunk; for graph building PBBS uses a sort or
        // atomic counts. Atomic fetch_add per arc is simple and scales.
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let acounts: &[AtomicUsize] = unsafe {
                // SAFETY: exclusive borrow reinterpreted as atomics.
                std::slice::from_raw_parts(counts.as_ptr() as *const AtomicUsize, counts.len())
            };
            edges.par_iter().for_each(|&(u, _)| {
                acounts[u as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        scan_inplace_exclusive(&mut counts, 0, |a, b| a + b);
        let offsets = counts;
        let mut adj = vec![0u32; edges.len()];
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let cursors: Vec<AtomicUsize> =
                offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
            let adj_ptr = SendPtr::new(adj.as_mut_ptr());
            edges.par_iter().for_each(|&(u, v)| {
                let slot = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: each fetch_add returns a unique slot within u's
                // CSR range; ranges are disjoint per the scan.
                unsafe { adj_ptr.write(slot, v) };
            });
        }
        // Sort each adjacency list for deterministic iteration order.
        let mut g = Graph { offsets, adj };
        g.sort_adjacency();
        g
    }

    /// Builds the undirected version (arcs in both directions) from an
    /// edge list.
    pub fn undirected_from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            arcs.push((u, v));
            arcs.push((v, u));
        }
        Graph::from_edges(n, &arcs)
    }

    /// Sorts every adjacency list (parallel over vertices via `RngInd`).
    /// CSR boundaries are monotone and bounded by construction, so the
    /// checked iterator's `O(n)` monotonicity validation is the paper's
    /// ~free comfort tier.
    pub fn sort_adjacency(&mut self) {
        use rpb_fearless::ParIndChunksMutExt;
        self.adj
            .par_ind_chunks_mut(&self.offsets)
            .for_each(|chunk| chunk.sort_unstable());
    }

    /// Hints the CPU to pull `v`'s adjacency row toward L1 ahead of its
    /// expansion. Frontier order is data-dependent, so the hardware
    /// prefetcher cannot predict these rows; issuing the hint a few
    /// frontier slots early (callers use [`Graph::PREFETCH_DISTANCE`])
    /// hides most of the miss. Compiles to nothing without
    /// `--features simd` (or off x86_64); callers gate on
    /// [`prefetch_active`] so the scalar differential axis also skips it.
    #[inline]
    pub fn prefetch_row(&self, v: usize) {
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let row = self.offsets[v]..self.offsets[v + 1];
            if row.is_empty() {
                return;
            }
            let ptr = self.adj[row.start..row.end].as_ptr();
            // SAFETY: prefetch is a pure performance hint — it never
            // faults and carries no memory-safety obligations.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.cast()) };
            if row.len() > 16 {
                // Rows longer than one cache line: grab the second line
                // too (16 × u32 = 64 bytes).
                // SAFETY: as above; the address is within the row.
                unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.wrapping_add(16).cast()) };
            }
            rpb_obs::metrics::GRAPH_PREFETCH_ROWS.add(1);
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64", not(miri))))]
        let _ = v;
    }

    /// Frontier slots of look-ahead between issuing [`Graph::prefetch_row`]
    /// and expanding the row: far enough to beat DRAM latency, near
    /// enough to stay resident in L1/L2 until use.
    pub const PREFETCH_DISTANCE: usize = 8;

    /// Partitions the indices of `frontier` into roughly `ntasks`
    /// contiguous, in-order ranges of approximately equal **edge** work.
    ///
    /// Splitting a frontier by vertex count assigns a power-law hub —
    /// R-MAT/link frontiers routinely carry one holding a large share of
    /// all frontier edges — to the same task as thousands of leaves,
    /// serializing the level on that task. Cutting at out-degree
    /// prefix-sum quotas keeps every task's edge total near
    /// `total / ntasks`; a hub larger than the quota gets a dedicated
    /// range. Every vertex also counts one unit of bookkeeping work so
    /// zero-degree runs still split.
    pub fn partition_frontier_by_edges(
        &self,
        frontier: &[u32],
        ntasks: usize,
    ) -> Vec<Range<usize>> {
        let ntasks = ntasks.max(1);
        if frontier.is_empty() {
            return Vec::new();
        }
        let total: usize = frontier.iter().map(|&u| self.degree(u as usize) + 1).sum();
        let quota = total.div_ceil(ntasks);
        let mut ranges = Vec::with_capacity(ntasks + 1);
        let mut start = 0;
        let mut acc = 0;
        for (i, &u) in frontier.iter().enumerate() {
            acc += self.degree(u as usize) + 1;
            if acc >= quota {
                ranges.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < frontier.len() {
            ranges.push(start..frontier.len());
        }
        ranges
    }

    /// The arc list `(u, v)` of this graph.
    pub fn to_edges(&self) -> Vec<(u32, u32)> {
        (0..self.num_vertices())
            .into_par_iter()
            .flat_map_iter(|u| self.neighbors(u).iter().map(move |&v| (u as u32, v)))
            .collect()
    }
}

/// A weighted graph in CSR form; `weights[k]` belongs to arc `adj[k]`.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedGraph {
    /// Topology.
    pub graph: Graph,
    /// Per-arc weights, parallel to `graph.adj`.
    pub weights: Vec<u32>,
}

impl WeightedGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }

    /// Weighted variant of [`Graph::prefetch_row`]: pulls the weight row
    /// alongside the adjacency row (the kernels read both).
    #[inline]
    pub fn prefetch_row(&self, v: usize) {
        self.graph.prefetch_row(v);
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if let Some(w) = self.weights.get(self.graph.offsets[v]) {
                // SAFETY: prefetch is a pure performance hint — it never
                // faults and carries no memory-safety obligations.
                unsafe { _mm_prefetch::<_MM_HINT_T0>((w as *const u32).cast()) };
            }
        }
    }

    /// `(neighbor, weight)` pairs of `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let r = self.graph.offsets[v]..self.graph.offsets[v + 1];
        self.graph.adj[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Builds from weighted edges `(u, v, w)`, directed.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> WeightedGraph {
        // Pack weight into the adjacency value during construction by
        // building a CSR of (v, w) pairs encoded as u64, then splitting.
        let arcs: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let mut topo = Graph::from_edges(n, &arcs);
        // Re-derive the weights in adjacency order: build a map from (u,v)
        // occurrences. Simplest deterministic approach: rebuild adjacency
        // as (v,w) pairs per-vertex sequentially in parallel per vertex.
        let mut per_vertex: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            per_vertex[u as usize].push((v, w));
        }
        per_vertex.par_iter_mut().for_each(|l| l.sort_unstable());
        let mut adj = Vec::with_capacity(edges.len());
        let mut weights = Vec::with_capacity(edges.len());
        for l in &per_vertex {
            for &(v, w) in l {
                adj.push(v);
                weights.push(w);
            }
        }
        topo.adj = adj;
        WeightedGraph {
            graph: topo,
            weights,
        }
    }

    /// Undirected weighted build: each `(u, v, w)` becomes two arcs with
    /// the same weight.
    pub fn undirected_from_edges(n: usize, edges: &[(u32, u32, u32)]) -> WeightedGraph {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        WeightedGraph::from_edges(n, &arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 0-2, 1-3, 2-3 undirected
        Graph::undirected_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_edges_counts_match() {
        let edges = vec![(0u32, 1u32), (0, 2), (0, 3), (2, 0)];
        let g = Graph::from_edges(4, &edges);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn large_parallel_build_matches_sequential() {
        let n = 2000usize;
        let edges: Vec<(u32, u32)> = (0..30_000u64)
            .map(|i| {
                let h = rpb_parlay::random::hash64(i);
                ((h % n as u64) as u32, ((h >> 24) % n as u64) as u32)
            })
            .collect();
        let g = Graph::from_edges(n, &edges);
        // Sequential reference.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            lists[u as usize].push(v);
        }
        for l in &mut lists {
            l.sort_unstable();
        }
        for u in 0..n {
            assert_eq!(g.neighbors(u), &lists[u][..], "vertex {u}");
        }
    }

    #[test]
    fn round_trip_edges() {
        let g = diamond();
        let edges = g.to_edges();
        let g2 = Graph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_neighbors_align() {
        let wg = WeightedGraph::undirected_from_edges(3, &[(0, 1, 10), (1, 2, 20), (0, 2, 30)]);
        let n0: Vec<(u32, u32)> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 10), (2, 30)]);
        let n2: Vec<(u32, u32)> = wg.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 30), (1, 20)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(5, &[(1, 3)]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn edge_partition_covers_in_order_and_isolates_hubs() {
        // Star: vertex 0 has degree 63, every leaf degree 1.
        let edges: Vec<(u32, u32)> = (1..64).map(|v| (0u32, v)).collect();
        let g = Graph::undirected_from_edges(64, &edges);
        let frontier: Vec<u32> = (0..64).collect();
        let parts = g.partition_frontier_by_edges(&frontier, 4);
        // Contiguous, in-order, complete cover of the frontier indices.
        let mut expect = 0;
        for r in &parts {
            assert_eq!(r.start, expect, "{parts:?}");
            assert!(r.end > r.start, "{parts:?}");
            expect = r.end;
        }
        assert_eq!(expect, frontier.len());
        // The hub's edge share exceeds one quota: it gets a dedicated
        // range instead of dragging a pile of leaves with it.
        assert_eq!(parts[0], 0..1);
        // The leaves still split into several tasks rather than one blob.
        assert!(parts.len() >= 3, "{parts:?}");
    }

    #[test]
    fn edge_partition_handles_degenerate_frontiers() {
        let g = Graph::from_edges(8, &[]);
        let frontier: Vec<u32> = (0..8).collect();
        let parts = g.partition_frontier_by_edges(&frontier, 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), 8);
        assert!(parts.len() > 1, "{parts:?}");
        assert!(g.partition_frontier_by_edges(&[], 4).is_empty());
        // ntasks = 0 is treated as 1.
        assert_eq!(g.partition_frontier_by_edges(&frontier, 0), vec![0..8]);
    }

    #[test]
    fn prefetch_row_accepts_every_vertex() {
        // A pure hint: must be callable on any vertex, including ones
        // with empty rows, under every feature combination.
        let g = diamond();
        for v in 0..g.num_vertices() {
            g.prefetch_row(v);
        }
        let empty = Graph::from_edges(2, &[]);
        empty.prefetch_row(0);
        empty.prefetch_row(1);
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 5)]);
        for v in 0..wg.num_vertices() {
            wg.prefetch_row(v);
        }
    }
}
