//! Compressed sparse row graphs, unweighted and weighted.
//!
//! The CSR layout is itself an instance of the paper's `RngInd` pattern:
//! vertex `v`'s neighbours live at `adj[offsets[v]..offsets[v+1]]`, a
//! contiguous chunk addressed through a run-time offsets array. Builders
//! here use parlay's scan + scatter machinery.

use rayon::prelude::*;

use rpb_parlay::scan::scan_inplace_exclusive;
use rpb_parlay::sendptr::SendPtr;

/// An unweighted directed graph in CSR form. For undirected graphs both
/// arc directions are stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `n+1` boundaries into `adj`.
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    pub adj: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of stored arcs (2× edges for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Average degree (arcs per vertex).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Builds a CSR graph from an arc list over `n` vertices, in parallel
    /// (counts → scan → scatter). Duplicate arcs and self-loops are kept.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut counts = vec![0usize; n + 1];
        // Parallel per-chunk counting into per-chunk histograms would need
        // n-sized buffers per chunk; for graph building PBBS uses a sort or
        // atomic counts. Atomic fetch_add per arc is simple and scales.
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let acounts: &[AtomicUsize] = unsafe {
                // SAFETY: exclusive borrow reinterpreted as atomics.
                std::slice::from_raw_parts(counts.as_ptr() as *const AtomicUsize, counts.len())
            };
            edges.par_iter().for_each(|&(u, _)| {
                acounts[u as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        scan_inplace_exclusive(&mut counts, 0, |a, b| a + b);
        let offsets = counts;
        let mut adj = vec![0u32; edges.len()];
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let cursors: Vec<AtomicUsize> =
                offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
            let adj_ptr = SendPtr::new(adj.as_mut_ptr());
            edges.par_iter().for_each(|&(u, v)| {
                let slot = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: each fetch_add returns a unique slot within u's
                // CSR range; ranges are disjoint per the scan.
                unsafe { adj_ptr.write(slot, v) };
            });
        }
        // Sort each adjacency list for deterministic iteration order.
        let mut g = Graph { offsets, adj };
        g.sort_adjacency();
        g
    }

    /// Builds the undirected version (arcs in both directions) from an
    /// edge list.
    pub fn undirected_from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            arcs.push((u, v));
            arcs.push((v, u));
        }
        Graph::from_edges(n, &arcs)
    }

    /// Sorts every adjacency list (parallel over vertices via `RngInd`).
    /// CSR boundaries are monotone and bounded by construction, so the
    /// checked iterator's `O(n)` monotonicity validation is the paper's
    /// ~free comfort tier.
    pub fn sort_adjacency(&mut self) {
        use rpb_fearless::ParIndChunksMutExt;
        self.adj
            .par_ind_chunks_mut(&self.offsets)
            .for_each(|chunk| chunk.sort_unstable());
    }

    /// The arc list `(u, v)` of this graph.
    pub fn to_edges(&self) -> Vec<(u32, u32)> {
        (0..self.num_vertices())
            .into_par_iter()
            .flat_map_iter(|u| self.neighbors(u).iter().map(move |&v| (u as u32, v)))
            .collect()
    }
}

/// A weighted graph in CSR form; `weights[k]` belongs to arc `adj[k]`.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedGraph {
    /// Topology.
    pub graph: Graph,
    /// Per-arc weights, parallel to `graph.adj`.
    pub weights: Vec<u32>,
}

impl WeightedGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }

    /// `(neighbor, weight)` pairs of `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let r = self.graph.offsets[v]..self.graph.offsets[v + 1];
        self.graph.adj[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Builds from weighted edges `(u, v, w)`, directed.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> WeightedGraph {
        // Pack weight into the adjacency value during construction by
        // building a CSR of (v, w) pairs encoded as u64, then splitting.
        let arcs: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let mut topo = Graph::from_edges(n, &arcs);
        // Re-derive the weights in adjacency order: build a map from (u,v)
        // occurrences. Simplest deterministic approach: rebuild adjacency
        // as (v,w) pairs per-vertex sequentially in parallel per vertex.
        let mut per_vertex: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            per_vertex[u as usize].push((v, w));
        }
        per_vertex.par_iter_mut().for_each(|l| l.sort_unstable());
        let mut adj = Vec::with_capacity(edges.len());
        let mut weights = Vec::with_capacity(edges.len());
        for l in &per_vertex {
            for &(v, w) in l {
                adj.push(v);
                weights.push(w);
            }
        }
        topo.adj = adj;
        WeightedGraph {
            graph: topo,
            weights,
        }
    }

    /// Undirected weighted build: each `(u, v, w)` becomes two arcs with
    /// the same weight.
    pub fn undirected_from_edges(n: usize, edges: &[(u32, u32, u32)]) -> WeightedGraph {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        WeightedGraph::from_edges(n, &arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 0-2, 1-3, 2-3 undirected
        Graph::undirected_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_edges_counts_match() {
        let edges = vec![(0u32, 1u32), (0, 2), (0, 3), (2, 0)];
        let g = Graph::from_edges(4, &edges);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn large_parallel_build_matches_sequential() {
        let n = 2000usize;
        let edges: Vec<(u32, u32)> = (0..30_000u64)
            .map(|i| {
                let h = rpb_parlay::random::hash64(i);
                ((h % n as u64) as u32, ((h >> 24) % n as u64) as u32)
            })
            .collect();
        let g = Graph::from_edges(n, &edges);
        // Sequential reference.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            lists[u as usize].push(v);
        }
        for l in &mut lists {
            l.sort_unstable();
        }
        for u in 0..n {
            assert_eq!(g.neighbors(u), &lists[u][..], "vertex {u}");
        }
    }

    #[test]
    fn round_trip_edges() {
        let g = diamond();
        let edges = g.to_edges();
        let g2 = Graph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_neighbors_align() {
        let wg = WeightedGraph::undirected_from_edges(3, &[(0, 1, 10), (1, 2, 20), (0, 2, 30)]);
        let n0: Vec<(u32, u32)> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 10), (2, 30)]);
        let n2: Vec<(u32, u32)> = wg.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 30), (1, 20)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(5, &[(1, 3)]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(4), 0);
    }
}
