//! Sequential reference algorithms used to validate the parallel
//! benchmarks and as the 1-thread baselines of Fig. 4.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::csr::{Graph, WeightedGraph};

/// Unreachable marker in distance arrays.
pub const INF: u64 = u64::MAX;

/// Sequential BFS hop distances from `src`.
pub fn bfs(g: &Graph, src: usize) -> Vec<u64> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            if dist[v as usize] == INF {
                dist[v as usize] = du + 1;
                q.push_back(v as usize);
            }
        }
    }
    dist
}

/// Sequential Dijkstra shortest-path distances from `src`.
pub fn dijkstra(g: &WeightedGraph, src: usize) -> Vec<u64> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v as usize)));
            }
        }
    }
    dist
}

/// Sequential greedy maximal independent set in vertex-priority order.
///
/// `priority[v]` gives each vertex's rank; the greedy processes vertices
/// from the lowest priority value upward — the order the deterministic
/// parallel version must agree with.
pub fn greedy_mis(g: &Graph, priority: &[u64]) -> Vec<bool> {
    let n = g.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (priority[v], v));
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for v in order {
        if !blocked[v] {
            in_set[v] = true;
            blocked[v] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    in_set
}

/// Sequential greedy maximal matching in edge order.
///
/// Returns a flag per edge of `edges`; matched edges form a maximal
/// matching when edges are processed in index order.
pub fn greedy_matching(n: usize, edges: &[(u32, u32)]) -> Vec<bool> {
    let mut matched_vertex = vec![false; n];
    let mut in_matching = vec![false; edges.len()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        if u != v && !matched_vertex[u as usize] && !matched_vertex[v as usize] {
            matched_vertex[u as usize] = true;
            matched_vertex[v as usize] = true;
            in_matching[i] = true;
        }
    }
    in_matching
}

/// Kruskal MSF over an explicit edge list; returns the chosen edge
/// indices and the total weight.
pub fn kruskal(n: usize, edges: &[(u32, u32, u32)]) -> (Vec<usize>, u64) {
    let mut idx: Vec<usize> = (0..edges.len()).collect();
    idx.sort_by_key(|&i| (edges[i].2, i));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    let mut chosen = Vec::new();
    let mut total = 0u64;
    for i in idx {
        let (u, v, w) = edges[i];
        let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if ru != rv {
            parent[ru] = rv;
            chosen.push(i);
            total += w as u64;
        }
    }
    (chosen, total)
}

/// Number of connected components (sequential union-find).
pub fn num_components(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for u in 0..n {
        for &v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru] = rv;
            }
        }
    }
    (0..n).filter(|&x| find(&mut parent, x) == x).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{add_weights, grid_road, uniform_random};

    #[test]
    fn bfs_on_path() {
        let g = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::undirected_from_edges(4, &[(0, 1)]);
        let d = bfs(&g, 0);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        // 0 -10-> 1; 0 -1-> 2 -1-> 1: shortest 0->1 is 2.
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(dijkstra(&wg, 0), vec![0, 2, 1]);
    }

    #[test]
    fn dijkstra_equals_bfs_on_unit_weights() {
        let g = grid_road(400, 1);
        let wg = add_weights(g.clone(), 1, 2); // all weights 1
        let db = bfs(&g, 0);
        let dd = dijkstra(&wg, 0);
        assert_eq!(db, dd);
    }

    #[test]
    fn mis_is_independent_and_maximal() {
        let g = uniform_random(200, 600, 3);
        let pri: Vec<u64> = (0..g.num_vertices() as u64)
            .map(rpb_parlay::random::hash64)
            .collect();
        let mis = greedy_mis(&g, &pri);
        for u in 0..g.num_vertices() {
            if mis[u] {
                for &v in g.neighbors(u) {
                    assert!(
                        !(u != v as usize && mis[v as usize]),
                        "adjacent pair in MIS"
                    );
                }
            } else {
                let has_neighbor_in = g
                    .neighbors(u)
                    .iter()
                    .any(|&v| mis[v as usize] && v as usize != u);
                // Isolated self-loop-only vertices can only be excluded by
                // a neighbour; otherwise maximality is violated.
                assert!(has_neighbor_in, "vertex {u} could join the MIS");
            }
        }
    }

    #[test]
    fn matching_is_valid_and_maximal() {
        let edges: Vec<(u32, u32)> = (0..300u64)
            .map(|i| {
                let h = rpb_parlay::random::hash64(i);
                ((h % 100) as u32, ((h >> 13) % 100) as u32)
            })
            .collect();
        let m = greedy_matching(100, &edges);
        let mut used = vec![0; 100];
        for (i, &(u, v)) in edges.iter().enumerate() {
            if m[i] {
                used[u as usize] += 1;
                used[v as usize] += 1;
            }
        }
        assert!(used.iter().all(|&c| c <= 1), "vertex matched twice");
        for (i, &(u, v)) in edges.iter().enumerate() {
            if !m[i] && u != v {
                assert!(
                    used[u as usize] == 1 || used[v as usize] == 1,
                    "edge {i} could be added"
                );
            }
        }
    }

    #[test]
    fn kruskal_on_triangle() {
        let edges = vec![(0u32, 1u32, 1u32), (1, 2, 2), (0, 2, 3)];
        let (chosen, total) = kruskal(3, &edges);
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(total, 3);
    }

    #[test]
    fn components_counted() {
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(num_components(&g), 3); // {0,1,2}, {3}, {4,5}
    }
}
