//! Executor-trait conformance, run against every registered backend.
//!
//! The differential verifier treats the backend as a first-class axis, so
//! both executors must agree on the trait's contract — every task runs on
//! the `Ok` path, a panic unwinds the batch cleanly with the payload and
//! drain accounting preserved, worker counts are reported (and clamped)
//! identically, and `install` provides a data-parallel pool of the
//! requested width. Backend-specific *ordering* guarantees (the MQ
//! executor's deterministic 1-worker schedule) are unit-tested in
//! `src/executor.rs`; only substrate-independent properties live here.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use rpb_parlay::exec::{self, BackendKind, BatchTask, Executor, ALL_BACKENDS};

fn executors() -> Vec<&'static dyn Executor> {
    rpb_multiqueue::ensure_registered();
    ALL_BACKENDS.iter().map(|&b| exec::executor(b)).collect()
}

#[test]
fn registry_resolves_both_backends_with_matching_kinds() {
    for (expected, e) in ALL_BACKENDS.iter().zip(executors()) {
        assert_eq!(e.kind(), *expected);
        assert_eq!(e.name(), expected.label());
    }
}

#[test]
fn every_task_runs_exactly_once_on_the_ok_path() {
    for e in executors() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<BatchTask> = hits
            .iter()
            .map(|h| {
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }) as BatchTask
            })
            .collect();
        let stats = e
            .try_run_batch(4, tasks)
            .unwrap_or_else(|err| panic!("{}: clean batch failed: {err}", e.name()));
        assert_eq!(stats.tasks, 64, "{}", e.name());
        assert_eq!(stats.workers, 4, "{}", e.name());
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "{}: task {i}", e.name());
        }
    }
}

#[test]
fn worker_counts_clamp_to_at_least_one() {
    for e in executors() {
        let stats = e
            .try_run_batch(0, vec![Box::new(|| {}) as BatchTask])
            .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        assert_eq!(stats.workers, 1, "{}", e.name());
    }
}

#[test]
fn a_panicking_task_yields_the_payload_and_full_accounting() {
    const TASKS: usize = 16;
    for e in executors() {
        let tasks: Vec<BatchTask> = (0..TASKS)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("conformance-boom");
                    }
                }) as BatchTask
            })
            .collect();
        let err = e
            .try_run_batch(1, tasks)
            .expect_err(&format!("{}: panic must surface", e.name()));
        assert_eq!(err.message(), "conformance-boom", "{}", e.name());
        // Exactly one task panicked; the rest either completed or were
        // drained without running (which order is backend-specific, the
        // sum is not).
        assert_eq!(
            err.tasks_completed + err.tasks_drained + 1,
            TASKS,
            "{}: completed {} drained {}",
            e.name(),
            err.tasks_completed,
            err.tasks_drained
        );
    }
}

#[test]
fn run_batch_resumes_the_first_panic_on_the_caller() {
    for e in executors() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            e.run_batch(
                2,
                vec![Box::new(|| panic!("conformance-resume")) as BatchTask],
            );
        }));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("conformance-resume"),
            "{}",
            e.name()
        );
    }
}

#[test]
fn install_provides_a_pool_of_the_requested_width() {
    for e in executors() {
        let width = exec::run_in(e, 3, rayon::current_num_threads);
        assert_eq!(width, 3, "{}", e.name());
    }
}

#[test]
fn batches_may_borrow_from_the_calling_scope() {
    // BatchTask<'s> is lifetime-parameterized: tasks borrow caller-owned
    // state, no 'static bound anywhere.
    for e in executors() {
        let total = AtomicUsize::new(0);
        let tasks: Vec<BatchTask> = (1..=10)
            .map(|i| {
                let total = &total;
                Box::new(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                }) as BatchTask
            })
            .collect();
        e.run_batch(2, tasks);
        assert_eq!(total.load(Ordering::Relaxed), 55, "{}", e.name());
    }
}
