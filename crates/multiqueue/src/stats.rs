//! Quality instrumentation for the MultiQueue: rank-error measurement.
//!
//! The MultiQueue's guarantee is probabilistic: a pop returns an element
//! whose *rank* (number of strictly better resident elements) is small in
//! expectation — `O(q)` for `q` internal queues with best-of-two picks
//! (Rihani et al., refined by Alistarh et al.). This module measures the
//! empirical rank-error distribution of a pop sequence, reproducing the
//! kind of quality plots those papers report and letting `bfs`/`sssp`
//! users choose a queue count.

use std::collections::BTreeMap;

use crate::mq::MultiQueue;

/// Summary of an observed rank-error distribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankErrorStats {
    /// Number of pops measured.
    pub pops: usize,
    /// Mean rank error.
    pub mean: f64,
    /// Maximum rank error observed.
    pub max: usize,
    /// Share of pops that returned the exact minimum.
    pub exact_share: f64,
}

/// Feeds `items` (priority values, arbitrary order) through a fresh
/// MultiQueue with `n_queues` internal heaps, then pops everything
/// single-threadedly, measuring each pop's rank error against a mirror
/// multiset.
///
/// Single-threaded by design: rank error is only well-defined against a
/// quiescent resident set; the structural relaxation being measured (the
/// random two-choice pick) is present regardless of thread count.
pub fn measure_rank_error(items: &[u64], n_queues: usize) -> RankErrorStats {
    let mq: MultiQueue<()> = MultiQueue::new(n_queues);
    // Mirror multiset: priority -> multiplicity.
    let mut resident: BTreeMap<u64, usize> = BTreeMap::new();
    for &p in items {
        mq.push(p, ());
        *resident.entry(p).or_insert(0) += 1;
    }
    let mut stats = RankErrorStats::default();
    let mut total = 0usize;
    let mut exact = 0usize;
    while let Some((p, ()))= mq.pop() {
        let rank: usize = resident.range(..p).map(|(_, &c)| c).sum();
        total += rank;
        if rank == 0 {
            exact += 1;
        }
        stats.max = stats.max.max(rank);
        stats.pops += 1;
        match resident.get_mut(&p) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                resident.remove(&p);
            }
            None => panic!("popped priority {p} that was never resident"),
        }
    }
    assert!(resident.is_empty(), "elements lost: {resident:?}");
    stats.mean = total as f64 / stats.pops.max(1) as f64;
    stats.exact_share = exact as f64 / stats.pops.max(1) as f64;
    stats
}

/// Sweeps queue counts and returns `(n_queues, stats)` rows — the data
/// behind a rank-quality-vs-relaxation plot.
pub fn rank_error_sweep(items: &[u64], queue_counts: &[usize]) -> Vec<(usize, RankErrorStats)> {
    queue_counts.iter().map(|&q| (q, measure_rank_error(items, q))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_parlay::random::hash64;

    #[test]
    fn single_queue_is_exact() {
        let items: Vec<u64> = (0..5000).map(hash64).collect();
        let stats = measure_rank_error(&items, 1);
        assert_eq!(stats.pops, items.len());
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.max, 0);
        assert_eq!(stats.exact_share, 1.0);
    }

    #[test]
    fn rank_error_grows_with_queue_count() {
        let items: Vec<u64> = (0..20_000).map(hash64).collect();
        let sweep = rank_error_sweep(&items, &[1, 4, 16]);
        assert_eq!(sweep[0].1.mean, 0.0);
        assert!(
            sweep[2].1.mean > sweep[1].1.mean,
            "16 queues ({}) should be more relaxed than 4 ({})",
            sweep[2].1.mean,
            sweep[1].1.mean
        );
    }

    #[test]
    fn mean_rank_error_stays_order_of_queue_count() {
        let items: Vec<u64> = (0..20_000).map(hash64).collect();
        let stats = measure_rank_error(&items, 8);
        // Theory: O(q) expected; allow a generous constant.
        assert!(stats.mean < 64.0, "mean {}", stats.mean);
        assert_eq!(stats.pops, items.len());
    }

    #[test]
    fn duplicate_priorities_are_handled() {
        let items = vec![5u64; 1000];
        let stats = measure_rank_error(&items, 4);
        assert_eq!(stats.pops, 1000);
        assert_eq!(stats.mean, 0.0, "equal priorities have rank 0");
    }

    #[test]
    fn empty_input() {
        let stats = measure_rank_error(&[], 4);
        assert_eq!(stats.pops, 0);
    }
}
