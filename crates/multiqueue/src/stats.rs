//! Quality instrumentation for the MultiQueue: rank-error measurement.
//!
//! The MultiQueue's guarantee is probabilistic: a pop returns an element
//! whose *rank* (number of strictly better resident elements) is small in
//! expectation — `O(q)` for `q` internal queues with best-of-two picks
//! (Rihani et al., refined by Alistarh et al.). This module measures the
//! empirical rank-error distribution of a pop sequence, reproducing the
//! kind of quality plots those papers report and letting `bfs`/`sssp`
//! users choose a queue count.

use std::collections::BTreeMap;

use crate::mq::MultiQueue;

/// Summary of an observed rank-error distribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankErrorStats {
    /// Number of pops measured.
    pub pops: usize,
    /// Mean rank error over the ranked pops (`pops - sampler_misses`).
    pub mean: f64,
    /// Maximum rank error observed.
    pub max: usize,
    /// Share of ranked pops that returned the exact minimum.
    pub exact_share: f64,
    /// Pops the mirror multiset could not account for. Zero in the offline
    /// single-threaded measurement; under concurrent use (another thread
    /// popping the same queue mid-measurement) the affected pops are
    /// excluded from `mean`/`exact_share` instead of aborting the run.
    pub sampler_misses: usize,
}

/// Feeds `items` (priority values, arbitrary order) through a fresh
/// MultiQueue with `n_queues` internal heaps, then pops everything
/// single-threadedly, measuring each pop's rank error against a mirror
/// multiset.
///
/// Single-threaded by design: rank error is only well-defined against a
/// quiescent resident set; the structural relaxation being measured (the
/// random two-choice pick) is present regardless of thread count.
pub fn measure_rank_error(items: &[u64], n_queues: usize) -> RankErrorStats {
    let mq: MultiQueue<()> = MultiQueue::new(n_queues);
    // Mirror multiset: priority -> multiplicity.
    let mut resident: BTreeMap<u64, usize> = BTreeMap::new();
    for &p in items {
        mq.push(p, ());
        *resident.entry(p).or_insert(0) += 1;
    }
    drain_ranked(&mq, resident)
}

/// Pops `mq` dry, ranking each pop against the `resident` mirror. Pops the
/// mirror cannot account for (it was built from a different snapshot than
/// the queue, or another thread raced the drain) become `sampler_misses`.
fn drain_ranked(mq: &MultiQueue<()>, mut resident: BTreeMap<u64, usize>) -> RankErrorStats {
    let mut stats = RankErrorStats::default();
    let mut total = 0usize;
    let mut exact = 0usize;
    while let Some((p, ())) = mq.pop() {
        stats.pops += 1;
        match resident.get_mut(&p) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                resident.remove(&p);
            }
            None => {
                // A pop the mirror never saw: in principle impossible in
                // this single-threaded drain, but the queue may be shared
                // (a caller measuring an `mq` that other threads still
                // pop) and a racing removal desynchronizes the mirror.
                // Rank is undefined for such a pop — count it as a
                // sampler miss rather than aborting the measurement.
                stats.sampler_misses += 1;
                continue;
            }
        }
        let rank: usize = resident.range(..p).map(|(_, &c)| c).sum();
        total += rank;
        if rank == 0 {
            exact += 1;
        }
        stats.max = stats.max.max(rank);
    }
    // Leftover mirror entries mean the queue lost elements — still a hard
    // error when the measurement was race-free; with misses the mirror is
    // expectedly out of sync.
    if stats.sampler_misses == 0 {
        assert!(resident.is_empty(), "elements lost: {resident:?}");
    }
    let ranked = (stats.pops - stats.sampler_misses).max(1);
    stats.mean = total as f64 / ranked as f64;
    stats.exact_share = exact as f64 / ranked as f64;
    stats
}

/// Sweeps queue counts and returns `(n_queues, stats)` rows — the data
/// behind a rank-quality-vs-relaxation plot.
pub fn rank_error_sweep(items: &[u64], queue_counts: &[usize]) -> Vec<(usize, RankErrorStats)> {
    queue_counts
        .iter()
        .map(|&q| (q, measure_rank_error(items, q)))
        .collect()
}

/// Online rank-error sampling (feature `obs` only).
///
/// [`measure_rank_error`] above is offline: it owns the queue and drains it
/// single-threadedly. The bench harness also wants rank quality *during* a
/// real concurrent `bfs`/`sssp` run. When enabled, every `push`/`pop` of
/// every [`MultiQueue`] updates a global mirror multiset, and every
/// `sample_every`-th pop computes its rank error against the mirror,
/// feeding `rpb_obs::metrics::{MQ_RANK_SAMPLES, MQ_RANK_ERROR_SUM,
/// MQ_RANK_ERROR_MAX}` (mean = sum / samples).
///
/// Under concurrency the mirror is only approximately synchronized with
/// the queues (a pop may race a not-yet-mirrored removal), so the sampled
/// rank is an estimate — which is fine: rank error is itself a
/// probabilistic quantity. The mirror mutex serializes queue operations
/// while active, so the sampler is for *observability* runs, never for
/// the timed zero-cost configuration; it costs one relaxed atomic load
/// per operation while compiled in but disabled, and nothing at all
/// without the `obs` feature.
#[cfg(feature = "obs")]
mod online {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    pub(super) static ACTIVE: AtomicBool = AtomicBool::new(false);
    pub(super) static PERIOD: AtomicU64 = AtomicU64::new(16);
    pub(super) static OPS: AtomicU64 = AtomicU64::new(0);
    /// Priority -> multiplicity of elements believed resident.
    pub(super) static MIRROR: Mutex<BTreeMap<u64, usize>> = Mutex::new(BTreeMap::new());
}

/// Enables the global online rank-error sampler; every `sample_every`-th
/// pop is measured. Clears any previous mirror state and the sampled
/// metrics are accumulated into `rpb_obs::metrics` from here on.
#[cfg(feature = "obs")]
pub fn enable_online_sampler(sample_every: u64) {
    use std::sync::atomic::Ordering;
    let mut mirror = online::MIRROR.lock().expect("sampler mirror");
    mirror.clear();
    online::PERIOD.store(sample_every.max(1), Ordering::Relaxed);
    online::OPS.store(0, Ordering::Relaxed);
    online::ACTIVE.store(true, Ordering::Release);
}

/// Disables the sampler and drops the mirror. The accumulated
/// `mq_rank_samples` / `mq_rank_error_sum` / `mq_rank_error_max` metrics
/// are left in place for the harness to snapshot.
#[cfg(feature = "obs")]
pub fn disable_online_sampler() {
    use std::sync::atomic::Ordering;
    online::ACTIVE.store(false, Ordering::Release);
    online::MIRROR.lock().expect("sampler mirror").clear();
}

/// Hook called by [`MultiQueue::push`] before the element becomes poppable.
#[cfg(feature = "obs")]
pub(crate) fn online_on_push(pri: u64) {
    use std::sync::atomic::Ordering;
    if !online::ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let mut mirror = online::MIRROR.lock().expect("sampler mirror");
    *mirror.entry(pri).or_insert(0) += 1;
}

/// Hook called by [`MultiQueue::pop`] after a successful pop.
#[cfg(feature = "obs")]
pub(crate) fn online_on_pop(pri: u64) {
    use std::sync::atomic::Ordering;
    if !online::ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let mut mirror = online::MIRROR.lock().expect("sampler mirror");
    let period = online::PERIOD.load(Ordering::Relaxed);
    if online::OPS.fetch_add(1, Ordering::Relaxed) % period == 0 {
        let rank: usize = mirror.range(..pri).map(|(_, &c)| c).sum();
        rpb_obs::metrics::MQ_RANK_SAMPLES.add(1);
        rpb_obs::metrics::MQ_RANK_ERROR_SUM.add(rank as u64);
        rpb_obs::metrics::MQ_RANK_ERROR_MAX.record(rank as u64);
    }
    // Tolerate pops the mirror never saw (e.g. `drain`, or pushes that
    // raced the sampler being enabled) — but count them, so a harness can
    // tell how approximate the sampled ranks were.
    match mirror.get_mut(&pri) {
        Some(c) if *c > 1 => *c -= 1,
        Some(_) => {
            mirror.remove(&pri);
        }
        None => rpb_obs::metrics::MQ_RANK_SAMPLER_MISSES.add(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpb_parlay::random::hash64;

    #[test]
    fn single_queue_is_exact() {
        let items: Vec<u64> = (0..5000).map(hash64).collect();
        let stats = measure_rank_error(&items, 1);
        assert_eq!(stats.pops, items.len());
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.max, 0);
        assert_eq!(stats.exact_share, 1.0);
    }

    #[test]
    fn rank_error_grows_with_queue_count() {
        let items: Vec<u64> = (0..20_000).map(hash64).collect();
        let sweep = rank_error_sweep(&items, &[1, 4, 16]);
        assert_eq!(sweep[0].1.mean, 0.0);
        assert!(
            sweep[2].1.mean > sweep[1].1.mean,
            "16 queues ({}) should be more relaxed than 4 ({})",
            sweep[2].1.mean,
            sweep[1].1.mean
        );
    }

    #[test]
    fn mean_rank_error_stays_order_of_queue_count() {
        let items: Vec<u64> = (0..20_000).map(hash64).collect();
        let stats = measure_rank_error(&items, 8);
        // Theory: O(q) expected; allow a generous constant.
        assert!(stats.mean < 64.0, "mean {}", stats.mean);
        assert_eq!(stats.pops, items.len());
    }

    #[test]
    fn duplicate_priorities_are_handled() {
        let items = vec![5u64; 1000];
        let stats = measure_rank_error(&items, 4);
        assert_eq!(stats.pops, 1000);
        assert_eq!(stats.mean, 0.0, "equal priorities have rank 0");
    }

    #[test]
    fn empty_input() {
        let stats = measure_rank_error(&[], 4);
        assert_eq!(stats.pops, 0);
        assert_eq!(stats.sampler_misses, 0);
    }

    #[test]
    fn race_free_measurement_has_no_misses() {
        let items: Vec<u64> = (0..5000).map(hash64).collect();
        let stats = measure_rank_error(&items, 8);
        assert_eq!(stats.sampler_misses, 0);
    }

    #[test]
    fn unmirrored_pops_count_as_sampler_misses() {
        // Simulate a concurrent-pop race: the queue holds elements the
        // mirror snapshot never saw. Before the fix this panicked with
        // "popped priority … never resident"; now those pops are excluded
        // from the ranked statistics and reported as misses.
        let mq: MultiQueue<()> = MultiQueue::new(4);
        let mut mirror = std::collections::BTreeMap::new();
        for p in 0..100u64 {
            mq.push(p, ());
            if p < 90 {
                *mirror.entry(p).or_insert(0) += 1;
            }
        }
        let stats = drain_ranked(&mq, mirror);
        assert_eq!(stats.pops, 100);
        assert_eq!(stats.sampler_misses, 10);
        // Ranked statistics are normalized over the 90 accounted pops.
        assert!(stats.exact_share <= 1.0);
    }

    #[test]
    fn leftover_mirror_entries_tolerated_when_misses_occurred() {
        // The inverse desync: the mirror believes elements are resident
        // that the queue never held. With at least one miss the final
        // "elements lost" assertion must not fire.
        let mq: MultiQueue<()> = MultiQueue::new(2);
        let mut mirror = std::collections::BTreeMap::new();
        mq.push(7, ());
        *mirror.entry(99u64).or_insert(0) += 1; // never in the queue
        let stats = drain_ranked(&mq, mirror);
        assert_eq!(stats.pops, 1);
        assert_eq!(stats.sampler_misses, 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn online_sampler_records_rank_metrics() {
        use rpb_obs::metrics as obs;
        obs::MQ_RANK_SAMPLES.reset();
        obs::MQ_RANK_ERROR_SUM.reset();
        enable_online_sampler(1); // sample every pop
        let mq: MultiQueue<()> = MultiQueue::new(4);
        for p in (0..2000u64).rev() {
            mq.push(p, ());
        }
        while mq.pop().is_some() {}
        disable_online_sampler();
        let samples = obs::MQ_RANK_SAMPLES.get();
        // ≥ rather than ==: other tests' queues may pop concurrently while
        // the global sampler is active, adding their own samples.
        assert!(
            samples >= 2000,
            "every one of our pops sampled, got {samples}"
        );
        // The counters must be internally consistent (max ≥ mean).
        assert!(obs::MQ_RANK_ERROR_MAX.get() >= obs::MQ_RANK_ERROR_SUM.get() / samples);
    }
}
