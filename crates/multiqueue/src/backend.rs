//! The MultiQueue-driven [`Executor`] backend (`--backend mq`).
//!
//! Adapts [`crate::executor`] — the scoped worker-thread executor with
//! panic-drain semantics — to the `rpb_parlay::exec` trait so the bench
//! harness can schedule its task batches through the MultiQueue instead
//! of Rayon scopes. Batches map onto the executor directly: task *i*
//! becomes a queued item with priority *i*, and the executor's typed
//! `ExecutorError` (first panic payload + completed/drained accounting)
//! maps 1:1 onto [`BatchError`].
//!
//! [`Executor::install`] delegates the ambient *data-parallel* pool to
//! the Rayon backend: the MQ executor schedules explicit task batches,
//! while `par_iter`-style primitives inside the installed closure still
//! need a work-stealing pool. This layering (explicit tasking above, a
//! data-parallel substrate below) follows Kvik's composition of
//! schedulers over Rayon, and is precisely what the backend differential
//! (`rpb verify --backend rayon,mq`) exercises: the suite must not be
//! able to tell who hosted its workers.
//!
//! Call [`ensure_registered`] once at startup (the `rpb` binary does) to
//! fill the registry slot behind `rpb_parlay::exec::executor(Mq)`.

use rpb_parlay::exec::{self, BackendKind, BatchError, BatchStats, BatchTask, Executor};

/// The MultiQueue backend; a unit type — all state lives per run.
pub struct MqExecutor;

impl Executor for MqExecutor {
    fn kind(&self) -> BackendKind {
        BackendKind::Mq
    }

    fn install<'s>(&self, workers: usize, f: Box<dyn FnOnce() + Send + 's>) {
        // Data-parallel substrate stays Rayon (see module docs): the MQ
        // executor has no ambient-pool notion to install.
        exec::rayon_executor().install(workers, f)
    }

    fn try_run_batch<'s>(
        &self,
        workers: usize,
        tasks: Vec<BatchTask<'s>>,
    ) -> Result<BatchStats, BatchError> {
        let workers = workers.max(1);
        let initial: Vec<(u64, BatchTask<'s>)> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| (i as u64, t))
            .collect();
        match crate::executor::try_execute(workers, 2 * workers, initial, |_, t, _| t()) {
            Ok(stats) => Ok(BatchStats {
                tasks: stats.tasks,
                workers,
            }),
            Err(err) => {
                let (completed, drained) = (err.tasks_completed, err.tasks_drained);
                Err(BatchError::new(err.into_payload(), completed, drained))
            }
        }
    }
}

static MQ: MqExecutor = MqExecutor;

/// Registers the MQ backend in the `rpb_parlay::exec` registry.
/// Idempotent (first registration wins); call it before resolving
/// `BackendKind::Mq` executors.
pub fn ensure_registered() {
    exec::register(&MQ);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn registration_is_idempotent_and_resolvable() {
        ensure_registered();
        ensure_registered();
        let e = exec::executor(BackendKind::Mq);
        assert_eq!(e.kind(), BackendKind::Mq);
        assert_eq!(e.name(), "mq");
    }

    #[test]
    fn batch_runs_every_task_through_the_multiqueue() {
        ensure_registered();
        let counter = AtomicUsize::new(0);
        let tasks: Vec<BatchTask<'_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as BatchTask<'_>
            })
            .collect();
        let stats = exec::executor(BackendKind::Mq).run_batch(4, tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(stats.tasks, 64);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn batch_panic_maps_to_typed_batch_error() {
        ensure_registered();
        let tasks: Vec<BatchTask<'static>> = (0..16)
            .map(|i| {
                Box::new(move || {
                    if i == 7 {
                        panic!("injected mq batch panic");
                    }
                }) as BatchTask<'static>
            })
            .collect();
        let err = exec::executor(BackendKind::Mq)
            .try_run_batch(1, tasks)
            .expect_err("task 7 panics");
        assert_eq!(err.message(), "injected mq batch panic");
        // Single worker: accounting covers every task exactly once.
        assert_eq!(err.tasks_completed + err.tasks_drained + 1, 16);
    }

    #[test]
    fn install_provides_a_data_parallel_pool() {
        ensure_registered();
        let width = exec::run_in(
            exec::executor(BackendKind::Mq),
            3,
            rayon::current_num_threads,
        );
        assert_eq!(width, 3);
    }
}
