//! # rpb-multiqueue
//!
//! The MultiQueue relaxed concurrent priority scheduler (Rihani, Sanders &
//! Dementiev, SPAA'15) and a worker-thread executor, as used by the `bfs`
//! and `sssp` benchmarks of the RPB suite (Sec. 6 of the paper).
//!
//! A MultiQueue wraps `c × threads` sequential priority queues, each
//! guarded by a lock. `push` picks a random queue, locks it, and inserts.
//! `pop` locks two random queues and pops from the one with the
//! higher-priority top — giving *probabilistic* rank guarantees that in
//! practice scale far better than a strict concurrent heap.
//!
//! The paper's observations reproduced here:
//!
//! * Rust `Mutex`es encapsulate the sequential heaps, ruling out
//!   unsynchronized access and atomicity violations on them, and the
//!   RAII `MutexGuard` makes forgetting an unlock impossible.
//! * Nothing prevents deadlock or livelock — the *implementer* of the
//!   scheduler stays scared; the *user* of the safe API does not.

pub mod backend;
pub mod executor;
pub mod mq;
pub mod stats;

pub use backend::{ensure_registered, MqExecutor};
pub use executor::{
    execute, execute_on, panic_message, try_execute, try_execute_on, ExecutorError, ExecutorStats,
    Handle,
};
pub use mq::MultiQueue;
pub use stats::{measure_rank_error, rank_error_sweep, RankErrorStats};

#[cfg(feature = "obs")]
pub use stats::{disable_online_sampler, enable_online_sampler};
