//! The MultiQueue data structure.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use rpb_parlay::random::hash64;

/// A relaxed concurrent min-priority queue.
///
/// Priorities are `u64` (lower pops first); payloads are any `Send` type.
/// `pop` follows the classic best-of-two-random-queues rule, so the popped
/// element is only *probabilistically* near the global minimum — the rank
/// relaxation that makes `bfs`/`sssp` over a MultiQueue label-correcting
/// rather than label-setting algorithms.
/// Heap entry ordered by `(pri, tag)` only, inverted so the std max-heap
/// behaves as a min-heap; payloads never need `Ord`.
struct Entry<T> {
    pri: u64,
    tag: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.pri == other.pri && self.tag == other.tag
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smaller (pri, tag) is "greater" for the max-heap.
        other.pri.cmp(&self.pri).then(other.tag.cmp(&self.tag))
    }
}

pub struct MultiQueue<T> {
    queues: Vec<Mutex<BinaryHeap<Entry<T>>>>,
    /// Tie-break sequence number so equal priorities pop in FIFO-ish order
    /// and payloads never need `Ord`.
    seq: AtomicU64,
    /// Approximate number of resident elements.
    len: AtomicUsize,
    /// Per-call random pick counter.
    rng: AtomicU64,
}

impl<T: Send> MultiQueue<T> {
    /// Creates a MultiQueue with `n_queues` internal heaps (typically
    /// 2–4 × the number of worker threads).
    ///
    /// # Panics
    /// Panics if `n_queues == 0`.
    pub fn new(n_queues: usize) -> Self {
        assert!(n_queues > 0, "MultiQueue needs at least one internal queue");
        MultiQueue {
            queues: (0..n_queues)
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            rng: AtomicU64::new(0x5EED),
        }
    }

    /// Number of internal queues.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    #[inline]
    fn pick(&self) -> usize {
        let x = self.rng.fetch_add(1, Ordering::Relaxed);
        (hash64(x) % self.queues.len() as u64) as usize
    }

    /// Inserts `item` with priority `pri` (lower is better).
    ///
    /// Picks a random internal queue; if its lock is contended, moves on to
    /// another random queue rather than waiting (the SPAA'15 "wait-free
    /// locking discipline" for pushes).
    pub fn push(&self, pri: u64, item: T) {
        // Mirror the element before it becomes poppable so the online
        // rank-error sampler never sees a pop of an unknown priority.
        #[cfg(feature = "obs")]
        crate::stats::online_on_push(pri);
        let tag = self.seq.fetch_add(1, Ordering::Relaxed);
        let entry = Entry { pri, tag, item };
        loop {
            let q = self.pick();
            match self.queues[q].try_lock() {
                Some(mut heap) => {
                    heap.push(entry);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    rpb_obs::metrics::MQ_PUSHES.add(1);
                    return;
                }
                None => {
                    // Contended: retry on another random queue.
                    rpb_obs::metrics::MQ_PUSH_RETRIES.add(1);
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Pops an element of approximately minimal priority.
    ///
    /// Returns `None` only after a full sweep finds every internal queue
    /// empty — callers with in-flight producers must combine this with
    /// their own termination detection (see [`crate::executor`]).
    pub fn pop(&self) -> Option<(u64, T)> {
        // Best-of-two with a few retries, then a deterministic sweep.
        for _ in 0..4 {
            let (a, b) = (self.pick(), self.pick());
            let first = self.top_pri(a);
            let second = self.top_pri(b);
            let q = match (first, second) {
                (Some(pa), Some(pb)) => {
                    if pa <= pb {
                        a
                    } else {
                        b
                    }
                }
                (Some(_), None) => a,
                (None, Some(_)) => b,
                (None, None) => continue,
            };
            if let Some(mut heap) = self.queues[q].try_lock() {
                if let Some(Entry { pri, item, .. }) = heap.pop() {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    rpb_obs::metrics::MQ_POPS.add(1);
                    #[cfg(feature = "obs")]
                    crate::stats::online_on_pop(pri);
                    return Some((pri, item));
                }
            }
        }
        // Sweep: lock each queue in turn; guarantees progress when items
        // remain anywhere.
        rpb_obs::metrics::MQ_POP_SWEEPS.add(1);
        for q in 0..self.queues.len() {
            let mut heap = self.queues[q].lock();
            if let Some(Entry { pri, item, .. }) = heap.pop() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                rpb_obs::metrics::MQ_POPS.add(1);
                #[cfg(feature = "obs")]
                crate::stats::online_on_pop(pri);
                return Some((pri, item));
            }
        }
        rpb_obs::metrics::MQ_EMPTY_POPS.add(1);
        None
    }

    #[inline]
    fn top_pri(&self, q: usize) -> Option<u64> {
        let heap = self.queues[q].try_lock()?;
        heap.peek().map(|e| e.pri)
    }

    /// Approximate number of resident elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no elements are resident (exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains everything into a vector (sequential; test/debug helper).
    pub fn drain(&self) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        for q in &self.queues {
            let mut heap = q.lock();
            while let Some(Entry { pri, item, .. }) = heap.pop() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                out.push((pri, item));
            }
        }
        rpb_obs::metrics::MQ_DRAINED_ITEMS.add(out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_single_thread() {
        let mq: MultiQueue<&'static str> = MultiQueue::new(4);
        mq.push(3, "c");
        mq.push(1, "a");
        mq.push(2, "b");
        let mut popped = Vec::new();
        while let Some((p, s)) = mq.pop() {
            popped.push((p, s));
        }
        // All elements come out; with 4 queues the order is relaxed, but
        // every element must appear exactly once.
        popped.sort();
        assert_eq!(popped, vec![(1, "a"), (2, "b"), (3, "c")]);
        assert!(mq.is_empty());
    }

    #[test]
    fn strict_order_with_one_queue() {
        // A single internal queue degenerates to an exact priority queue.
        let mq: MultiQueue<u64> = MultiQueue::new(1);
        for i in [5u64, 1, 4, 2, 3] {
            mq.push(i, i * 10);
        }
        let got: Vec<u64> = std::iter::from_fn(|| mq.pop().map(|(p, _)| p)).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_tie_break_with_one_queue() {
        let mq: MultiQueue<u32> = MultiQueue::new(1);
        mq.push(7, 100);
        mq.push(7, 200);
        mq.push(7, 300);
        let got: Vec<u32> = std::iter::from_fn(|| mq.pop().map(|(_, v)| v)).collect();
        assert_eq!(got, vec![100, 200, 300]);
    }

    #[test]
    fn no_elements_lost_under_concurrency() {
        let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::new(8));
        let n_threads = 4;
        let per_thread = 5000u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let mq = Arc::clone(&mq);
                s.spawn(move || {
                    for i in 0..per_thread {
                        mq.push(hash64(t * per_thread + i), t * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(mq.len(), (n_threads * per_thread) as usize);
        let mut seen = vec![false; (n_threads * per_thread) as usize];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..n_threads {
                let mq = Arc::clone(&mq);
                handles.push(s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((_, v)) = mq.pop() {
                        local.push(v);
                    }
                    local
                }));
            }
            for h in handles {
                for v in h.join().expect("no panic") {
                    assert!(!seen[v as usize], "duplicate pop of {v}");
                    seen[v as usize] = true;
                }
            }
        });
        assert!(seen.iter().all(|&b| b), "lost elements");
    }

    #[test]
    fn relaxed_order_has_small_rank_error() {
        // The MultiQueue's probabilistic guarantee: the rank error of each
        // pop (how many smaller elements were still resident) stays O(#
        // queues) in expectation. Measure the mean against a live mirror.
        use std::collections::BTreeSet;
        let n_queues = 4;
        let mq: MultiQueue<u64> = MultiQueue::new(n_queues);
        let n = 10_000u64;
        let mut resident: BTreeSet<u64> = BTreeSet::new();
        for i in 0..n {
            mq.push(i, i);
            resident.insert(i);
        }
        let mut total_rank_error = 0u64;
        let mut pops = 0u64;
        while let Some((p, _)) = mq.pop() {
            total_rank_error += resident.range(..p).count() as u64;
            resident.remove(&p);
            pops += 1;
        }
        assert_eq!(pops, n, "lost elements");
        let mean = total_rank_error as f64 / n as f64;
        // Theory: expected rank error is O(n_queues); 4 queues with
        // best-of-two picks should stay well under 16.
        assert!(mean < 16.0, "mean rank error too high: {mean}");
    }

    #[test]
    fn drain_empties() {
        let mq: MultiQueue<u8> = MultiQueue::new(3);
        for i in 0..100 {
            mq.push(i, i as u8);
        }
        let drained = mq.drain();
        assert_eq!(drained.len(), 100);
        assert!(mq.is_empty());
        assert!(mq.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_queues_panics() {
        let _: MultiQueue<u8> = MultiQueue::new(0);
    }
}
