//! Long-running worker threads driving a [`MultiQueue`] to quiescence.
//!
//! The paper's `bfs`/`sssp` use "long-running worker threads that pop
//! tasks from the MQ then execute them (potentially pushing new tasks)
//! until the MQ is empty". The subtle part is *termination detection*: an
//! empty MultiQueue does not mean the computation is done while some
//! worker is still executing a task that may push children. We track an
//! in-flight counter: incremented for every pushed task, decremented when
//! its execution completes; workers exit when the counter hits zero.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::mq::MultiQueue;

/// Per-run statistics from [`execute`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Tasks executed across all workers.
    pub tasks: usize,
    /// Times a worker found the MQ momentarily empty and had to idle-spin.
    pub idle_spins: usize,
}

/// Capability handed to tasks for spawning children.
pub struct Handle<'a, T> {
    mq: &'a MultiQueue<T>,
    pending: &'a AtomicUsize,
}

impl<T: Send> Handle<'_, T> {
    /// Schedules a child task with priority `pri`.
    pub fn push(&self, pri: u64, item: T) {
        // Order matters: count the task before it becomes poppable so the
        // pending counter never under-reports.
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.mq.push(pri, item);
    }
}

/// Runs `task` over `initial` and everything it transitively pushes, on
/// `n_threads` OS worker threads. Returns aggregated statistics.
///
/// `task(pri, item, handle)` may push new work through the handle. The
/// call returns when every pushed task has finished executing.
pub fn execute<T, F>(
    n_threads: usize,
    n_queues: usize,
    initial: Vec<(u64, T)>,
    task: F,
) -> ExecutorStats
where
    T: Send,
    F: Fn(u64, T, &Handle<'_, T>) + Send + Sync,
{
    let n_threads = n_threads.max(1);
    let mq: MultiQueue<T> = MultiQueue::new(n_queues.max(1));
    let pending = AtomicUsize::new(initial.len());
    for (p, item) in initial {
        mq.push(p, item);
    }
    let total_tasks = AtomicUsize::new(0);
    let total_idle = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| {
                let handle = Handle {
                    mq: &mq,
                    pending: &pending,
                };
                let mut tasks = 0usize;
                let mut idle = 0usize;
                loop {
                    match mq.pop() {
                        Some((pri, item)) => {
                            task(pri, item, &handle);
                            tasks += 1;
                            pending.fetch_sub(1, Ordering::SeqCst);
                        }
                        None => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                total_tasks.fetch_add(tasks, Ordering::Relaxed);
                total_idle.fetch_add(idle, Ordering::Relaxed);
            });
        }
    });
    let stats = ExecutorStats {
        tasks: total_tasks.load(Ordering::Relaxed),
        idle_spins: total_idle.load(Ordering::Relaxed),
    };
    rpb_obs::metrics::EXEC_TASKS.add(stats.tasks as u64);
    rpb_obs::metrics::EXEC_IDLE_SPINS.add(stats.idle_spins as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_initial_tasks() {
        let counter = AtomicUsize::new(0);
        let init: Vec<(u64, usize)> = (0..1000).map(|i| (i as u64, i)).collect();
        let stats = execute(4, 8, init, |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.tasks, 1000);
    }

    #[test]
    fn children_are_executed() {
        // Binary fan-out to depth 10: 2^11 - 1 tasks.
        let counter = AtomicUsize::new(0);
        let stats = execute(4, 8, vec![(0u64, 0usize)], |pri, depth, h| {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth < 10 {
                h.push(pri + 1, depth + 1);
                h.push(pri + 1, depth + 1);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
        assert_eq!(stats.tasks, (1 << 11) - 1);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let stats = execute(2, 4, Vec::<(u64, ())>::new(), |_, _, _| {});
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn single_thread_works() {
        let counter = AtomicUsize::new(0);
        execute(1, 1, vec![(0, 5usize)], |_, n, h| {
            counter.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                h.push(0, n - 1);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }
}
