//! Long-running worker threads driving a [`MultiQueue`] to quiescence.
//!
//! The paper's `bfs`/`sssp` use "long-running worker threads that pop
//! tasks from the MQ then execute them (potentially pushing new tasks)
//! until the MQ is empty". The subtle part is *termination detection*: an
//! empty MultiQueue does not mean the computation is done while some
//! worker is still executing a task that may push children. We track an
//! in-flight counter: incremented for every pushed task, decremented when
//! its execution completes; workers exit when the counter hits zero.
//!
//! # Panic safety
//!
//! Termination detection makes panics dangerous: a task that unwinds out
//! of its worker thread would skip the in-flight decrement, leaving every
//! other worker spinning on a counter that never reaches zero — a
//! deadlock, not a crash. [`try_execute`] therefore catches each task's
//! panic, decrements the counter on the panic path too, signals the other
//! workers to stop, drains whatever tasks were still queued (dropping
//! them, so their payloads' destructors run), and surfaces the first
//! panic as a typed [`ExecutorError`]. [`execute`] keeps the transparent
//! behavior on top of that machinery: it resumes the original panic
//! payload on the caller's thread.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::mq::MultiQueue;
use rpb_parlay::exec::BackendKind;

pub use rpb_parlay::panics::panic_message;

/// Per-run statistics from [`execute`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Tasks executed across all workers.
    pub tasks: usize,
    /// Times a worker found the MQ momentarily empty and had to idle-spin.
    pub idle_spins: usize,
}

/// A task panicked during [`try_execute`]; the run was unwound cleanly.
///
/// Carries the first panic's payload (later concurrent panics are dropped)
/// plus accounting of what completed and what was abandoned. The queue's
/// remaining tasks were drained and dropped before this error was
/// returned, so no worker is left running and no task payload leaks.
pub struct ExecutorError {
    payload: Box<dyn Any + Send + 'static>,
    /// Tasks that finished executing before the run was abandoned.
    pub tasks_completed: usize,
    /// Tasks still queued at abandonment, drained and dropped.
    pub tasks_drained: usize,
}

impl ExecutorError {
    /// The panic message, when the payload was a `&'static str` or `String`.
    pub fn message(&self) -> &str {
        panic_message(&*self.payload)
    }

    /// Consumes the error, returning the captured panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }

    /// Re-raises the captured panic on the current thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl fmt::Debug for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorError")
            .field("message", &self.message())
            .field("tasks_completed", &self.tasks_completed)
            .field("tasks_drained", &self.tasks_drained)
            .finish()
    }
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executor task panicked: {} ({} tasks completed, {} drained)",
            self.message(),
            self.tasks_completed,
            self.tasks_drained
        )
    }
}

impl std::error::Error for ExecutorError {}

/// Capability handed to tasks for spawning children.
pub struct Handle<'a, T> {
    mq: &'a MultiQueue<T>,
    pending: &'a AtomicUsize,
}

impl<T: Send> Handle<'_, T> {
    /// Schedules a child task with priority `pri`.
    pub fn push(&self, pri: u64, item: T) {
        // Order matters: count the task before it becomes poppable so the
        // pending counter never under-reports.
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.mq.push(pri, item);
    }
}

/// Runs `task` over `initial` and everything it transitively pushes, on
/// `n_threads` OS worker threads. Returns aggregated statistics.
///
/// `task(pri, item, handle)` may push new work through the handle. The
/// call returns when every pushed task has finished executing.
///
/// If a task panics, the panic is re-raised on the calling thread with its
/// original payload — after the run has been unwound cleanly (see
/// [`try_execute`] for the non-panicking variant and the exact semantics).
pub fn execute<T, F>(
    n_threads: usize,
    n_queues: usize,
    initial: Vec<(u64, T)>,
    task: F,
) -> ExecutorStats
where
    T: Send,
    F: Fn(u64, T, &Handle<'_, T>) + Send + Sync,
{
    match try_execute(n_threads, n_queues, initial, task) {
        Ok(stats) => stats,
        Err(err) => err.resume(),
    }
}

/// [`execute`] with an explicit worker *substrate* (see
/// [`try_execute_on`] for the semantics of the `backend` parameter).
pub fn execute_on<T, F>(
    backend: BackendKind,
    n_threads: usize,
    n_queues: usize,
    initial: Vec<(u64, T)>,
    task: F,
) -> ExecutorStats
where
    T: Send,
    F: Fn(u64, T, &Handle<'_, T>) + Send + Sync,
{
    match try_execute_on(backend, n_threads, n_queues, initial, task) {
        Ok(stats) => stats,
        Err(err) => err.resume(),
    }
}

/// Like [`execute`], but surfaces a panicking task as `Err(ExecutorError)`
/// instead of re-raising the panic.
///
/// Unwind semantics when a task panics:
///
/// * the panicking task's in-flight slot is released, so termination
///   detection stays live for the other workers (no deadlock);
/// * every other worker stops at its next scheduling point — a task
///   already mid-execution runs to completion first;
/// * tasks still queued are drained and dropped (their destructors run),
///   counted in [`ExecutorError::tasks_drained`];
/// * the *first* panic's payload is captured; payloads of concurrent
///   panics from other workers are dropped.
pub fn try_execute<T, F>(
    n_threads: usize,
    n_queues: usize,
    initial: Vec<(u64, T)>,
    task: F,
) -> Result<ExecutorStats, ExecutorError>
where
    T: Send,
    F: Fn(u64, T, &Handle<'_, T>) + Send + Sync,
{
    try_execute_on(BackendKind::Mq, n_threads, n_queues, initial, task)
}

/// [`try_execute`] with an explicit worker *substrate*.
///
/// The scheduling policy — the MultiQueue, the in-flight counter, the
/// panic-drain machinery — is identical under both substrates; only how
/// the `n_threads` worker loops are hosted differs:
///
/// * [`BackendKind::Mq`] — dedicated scoped OS threads (the historical
///   [`execute`]/[`try_execute`] behavior, still their default);
/// * [`BackendKind::Rayon`] — `rayon::scope` tasks on the ambient Rayon
///   pool, so MQ-driven kernels compose with an installed pool instead
///   of spawning threads beside it.
///
/// Worker loops never block on each other (an idle worker spins +
/// yields), so hosting them on a pool narrower than `n_threads` cannot
/// deadlock: the workers that do run drain the queue to quiescence and
/// any never-started worker finds `pending == 0` and exits immediately.
/// At one worker the two substrates execute the exact same task
/// sequence, which is what lets the perf gate hard-compare obs counters
/// across backends.
pub fn try_execute_on<T, F>(
    backend: BackendKind,
    n_threads: usize,
    n_queues: usize,
    initial: Vec<(u64, T)>,
    task: F,
) -> Result<ExecutorStats, ExecutorError>
where
    T: Send,
    F: Fn(u64, T, &Handle<'_, T>) + Send + Sync,
{
    let n_threads = n_threads.max(1);
    rpb_obs::metrics::EXEC_RUNS.add(1);
    let mq: MultiQueue<T> = MultiQueue::new(n_queues.max(1));
    let pending = AtomicUsize::new(initial.len());
    for (p, item) in initial {
        mq.push(p, item);
    }
    let total_tasks = AtomicUsize::new(0);
    let total_idle = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    // One worker loop, shared by both substrates by reference.
    let worker = || {
        let handle = Handle {
            mq: &mq,
            pending: &pending,
        };
        let mut tasks = 0usize;
        let mut idle = 0usize;
        loop {
            if panicked.load(Ordering::Acquire) {
                break;
            }
            match mq.pop() {
                Some((pri, item)) => {
                    let result = catch_unwind(AssertUnwindSafe(|| task(pri, item, &handle)));
                    // Decrement on the panic path too: the popped
                    // task is no longer in flight either way, and
                    // skipping this is exactly the deadlock we are
                    // guarding against.
                    pending.fetch_sub(1, Ordering::SeqCst);
                    match result {
                        Ok(()) => tasks += 1,
                        Err(payload) => {
                            let mut slot = first_panic
                                .lock()
                                .unwrap_or_else(|poison| poison.into_inner());
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            panicked.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                None => {
                    if pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    idle += 1;
                    std::thread::yield_now();
                }
            }
        }
        total_tasks.fetch_add(tasks, Ordering::Relaxed);
        total_idle.fetch_add(idle, Ordering::Relaxed);
    };
    match backend {
        BackendKind::Mq => std::thread::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(&worker);
            }
        }),
        BackendKind::Rayon => rayon::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|_| worker());
            }
        }),
    }
    let stats = ExecutorStats {
        tasks: total_tasks.load(Ordering::Relaxed),
        idle_spins: total_idle.load(Ordering::Relaxed),
    };
    rpb_obs::metrics::EXEC_TASKS.add(stats.tasks as u64);
    rpb_obs::metrics::EXEC_IDLE_SPINS.add(stats.idle_spins as u64);
    if panicked.load(Ordering::Acquire) {
        // Drop everything still queued so task payloads are not leaked.
        let drained = mq.drain().len();
        let payload = first_panic
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
            .expect("panicked flag implies a stored payload");
        rpb_obs::metrics::EXEC_TASK_PANICS.add(1);
        rpb_obs::metrics::EXEC_TASKS_DRAINED.add(drained as u64);
        return Err(ExecutorError {
            payload,
            tasks_completed: stats.tasks,
            tasks_drained: drained,
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_initial_tasks() {
        let counter = AtomicUsize::new(0);
        let init: Vec<(u64, usize)> = (0..1000).map(|i| (i as u64, i)).collect();
        let stats = execute(4, 8, init, |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.tasks, 1000);
    }

    #[test]
    fn children_are_executed() {
        // Binary fan-out to depth 10: 2^11 - 1 tasks.
        let counter = AtomicUsize::new(0);
        let stats = execute(4, 8, vec![(0u64, 0usize)], |pri, depth, h| {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth < 10 {
                h.push(pri + 1, depth + 1);
                h.push(pri + 1, depth + 1);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
        assert_eq!(stats.tasks, (1 << 11) - 1);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let stats = execute(2, 4, Vec::<(u64, ())>::new(), |_, _, _| {});
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn single_thread_works() {
        let counter = AtomicUsize::new(0);
        execute(1, 1, vec![(0, 5usize)], |_, n, h| {
            counter.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                h.push(0, n - 1);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn panicking_task_surfaces_typed_error() {
        // Without catch_unwind + the panic-path decrement, the three
        // surviving workers would spin forever on `pending > 0` — this
        // test would hang rather than fail.
        let init: Vec<(u64, usize)> = (0..100).map(|i| (i as u64, i)).collect();
        let err = try_execute(4, 8, init, |_, item, _| {
            if item == 50 {
                panic!("injected task panic");
            }
        })
        .expect_err("one task panics");
        assert_eq!(err.message(), "injected task panic");
        assert!(err.tasks_completed <= 99);
    }

    #[test]
    fn panic_message_handles_string_payload() {
        let err = try_execute(2, 4, vec![(0u64, 7usize)], |_, item, _| {
            panic!("task {item} failed");
        })
        .expect_err("task panics");
        assert_eq!(err.message(), "task 7 failed");
        assert!(format!("{err}").contains("task 7 failed"));
    }

    #[test]
    fn execute_resumes_the_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            execute(2, 4, vec![(0u64, ())], |_, (), _| {
                panic!("propagated through execute");
            });
        })
        .expect_err("execute re-raises");
        assert_eq!(panic_message(&*caught), "propagated through execute");
    }

    #[test]
    fn queued_tasks_are_drained_and_dropped_after_panic() {
        // Every task payload must be accounted for after a panic: either
        // its task ran, it was consumed by the panicking closure, or it
        // was drained — and in all three cases its destructor runs.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        static RAN: AtomicUsize = AtomicUsize::new(0);
        struct Payload(#[allow(dead_code)] usize);
        impl Drop for Payload {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = 1000;
        let init: Vec<(u64, Payload)> = (0..n).map(|i| (i as u64, Payload(i))).collect();
        // Single worker: after the first (lowest-priority) task panics,
        // everything else must come back through the drain path.
        let err = try_execute(1, 4, init, |_, payload, _| {
            RAN.fetch_add(1, Ordering::SeqCst);
            drop(payload);
            panic!("abandon run");
        })
        .expect_err("first task panics");
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
        assert_eq!(err.tasks_completed, 0);
        assert_eq!(err.tasks_drained, n - 1);
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            n,
            "every payload dropped exactly once"
        );
    }

    #[test]
    fn all_workers_stop_after_concurrent_panics() {
        // Several workers may panic at once; exactly one payload is kept
        // and the run still terminates.
        let init: Vec<(u64, usize)> = (0..64).map(|i| (i as u64, i)).collect();
        let err = try_execute(4, 8, init, |_, _, _| {
            panic!("many panics");
        })
        .expect_err("all tasks panic");
        assert_eq!(err.message(), "many panics");
    }

    #[test]
    fn children_pushed_before_panic_are_drained() {
        let err = try_execute(1, 2, vec![(0u64, 0usize)], |_, depth, h| {
            if depth == 0 {
                h.push(1, 1);
                h.push(1, 2);
                panic!("parent dies after spawning");
            }
        })
        .expect_err("parent panics");
        assert_eq!(err.tasks_drained, 2);
    }

    #[test]
    fn rayon_substrate_runs_children_to_quiescence() {
        // Same binary fan-out as `children_are_executed`, hosted on the
        // ambient Rayon pool instead of scoped OS threads.
        let counter = AtomicUsize::new(0);
        let stats = execute_on(
            BackendKind::Rayon,
            4,
            8,
            vec![(0u64, 0usize)],
            |pri, depth, h| {
                counter.fetch_add(1, Ordering::Relaxed);
                if depth < 10 {
                    h.push(pri + 1, depth + 1);
                    h.push(pri + 1, depth + 1);
                }
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
        assert_eq!(stats.tasks, (1 << 11) - 1);
    }

    #[test]
    fn rayon_substrate_drains_after_panic() {
        // Single worker, first task panics: every other task must come
        // back through the drain path, exactly as on OS threads.
        let init: Vec<(u64, usize)> = (0..100).map(|i| (i as u64, i)).collect();
        let err = try_execute_on(BackendKind::Rayon, 1, 4, init, |_, _, _| {
            panic!("abandon rayon-hosted run");
        })
        .expect_err("first task panics");
        assert_eq!(err.message(), "abandon rayon-hosted run");
        assert_eq!(err.tasks_completed, 0);
        assert_eq!(err.tasks_drained, 99);
    }

    #[test]
    fn rayon_substrate_survives_pools_narrower_than_worker_count() {
        // 8 requested workers on a 2-thread pool: the workers that do get
        // slots drain the queue; the rest find pending == 0 and exit.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("thread pool");
        let counter = AtomicUsize::new(0);
        let init: Vec<(u64, usize)> = (0..500).map(|i| (i as u64, i)).collect();
        let stats = pool.install(|| {
            execute_on(BackendKind::Rayon, 8, 8, init, |_, _, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(stats.tasks, 500);
    }
}
