//! Repo automation tasks (`cargo xtask <task>`).
//!
//! The one task so far is `unsafe-audit`, the soundness gate wired into
//! CI: every `unsafe` block, `unsafe fn`, and `unsafe impl`/`trait` in the
//! workspace must carry an adjacent justification — a `// SAFETY:` comment
//! or a `# Safety` doc section — and the generated unsafe-inventory table
//! in `DESIGN.md` must be up to date.
//!
//! ```text
//! cargo xtask unsafe-audit            # check (CI mode): exit 1 on any
//!                                     # undocumented site or stale table
//! cargo xtask unsafe-audit --write    # regenerate the DESIGN.md table
//! ```
//!
//! The scanner is deliberately dependency-free (no `syn`): a line-level
//! lexer that blanks strings and comments, then classifies each `unsafe`
//! keyword by its following token. Heuristic, but tuned so that every
//! legitimate documentation style in this repo is recognized; if it flags
//! a false positive, the fix — writing down why the block is sound — is
//! exactly the behaviour the gate exists to force.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const MARKER_BEGIN: &str = "<!-- unsafe-inventory:begin -->";
const MARKER_END: &str = "<!-- unsafe-inventory:end -->";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("unsafe-audit") => {
            let write = args.iter().any(|a| a == "--write");
            match unsafe_audit(write) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask unsafe-audit [--write]");
            ExitCode::FAILURE
        }
    }
}

fn unsafe_audit(write: bool) -> Result<(), String> {
    let root = workspace_root()?;
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut inventory: Vec<(String, Vec<UnsafeSite>)> = Vec::new();
    let mut undocumented: Vec<String> = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("unsafe-audit: reading {}: {e}", path.display()))?;
        let sites = scan_source(&source);
        if sites.is_empty() {
            continue;
        }
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string()
            .replace('\\', "/");
        for site in &sites {
            if !site.documented {
                undocumented.push(format!("{rel}:{}: undocumented {}", site.line, site.kind));
            }
        }
        inventory.push((rel, sites));
    }

    let table = render_table(&inventory);
    let design_path = root.join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path)
        .map_err(|e| format!("unsafe-audit: reading DESIGN.md: {e}"))?;
    let updated = splice_between_markers(&design, &table)?;

    if write {
        if updated != design {
            std::fs::write(&design_path, &updated)
                .map_err(|e| format!("unsafe-audit: writing DESIGN.md: {e}"))?;
            println!("unsafe-audit: DESIGN.md inventory regenerated");
        } else {
            println!("unsafe-audit: DESIGN.md inventory already current");
        }
    } else if updated != design {
        return Err("unsafe-audit: DESIGN.md unsafe-inventory table is stale; \
             run `cargo xtask unsafe-audit --write`"
            .to_string());
    }

    let total: usize = inventory.iter().map(|(_, s)| s.len()).sum();
    if undocumented.is_empty() {
        println!(
            "unsafe-audit: {total} unsafe sites across {} files, all documented",
            inventory.len()
        );
        Ok(())
    } else {
        let mut msg = format!(
            "unsafe-audit: {} of {total} unsafe sites lack an adjacent \
             `// SAFETY:` comment or `# Safety` doc section:\n",
            undocumented.len()
        );
        for u in &undocumented {
            let _ = writeln!(msg, "  {u}");
        }
        Err(msg)
    }
}

/// Walks up from the current directory to the manifest declaring
/// `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("unsafe-audit: cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("unsafe-audit: no workspace root found above cwd".to_string());
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

impl std::fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Trait => "unsafe trait",
        })
    }
}

#[derive(Debug)]
struct UnsafeSite {
    /// 1-based line number of the `unsafe` keyword.
    line: usize,
    kind: UnsafeKind,
    documented: bool,
}

/// Blanks string literals, char literals, and comments with spaces so the
/// keyword scan never matches inside them. Line structure is preserved.
fn blank_noncode(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"...", r#"..."#, ...
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.push(b' ');
                    for _ in 0..=hashes {
                        out.push(b' ');
                    }
                    i = j + 1;
                    loop {
                        if i >= bytes.len() {
                            break;
                        }
                        if bytes[i] == b'"'
                            && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#')
                        {
                            for _ in 0..=hashes {
                                out.push(b' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' or '\n' is a literal;
                // 'a (no closing quote right after) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.extend_from_slice(b"    ");
                    i += 3; // '\x — skip to (at least) the closing quote
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds every `unsafe` keyword in `source`, classifies it, and decides
/// whether it is documented.
fn scan_source(source: &str) -> Vec<UnsafeSite> {
    let code = blank_noncode(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_bytes = code.as_bytes();
    let mut sites = Vec::new();
    let mut search = 0;
    while let Some(pos) = code[search..].find("unsafe") {
        let at = search + pos;
        search = at + "unsafe".len();
        // Word boundaries: reject `unsafe_op_in_unsafe_fn`, `Unsafe`, etc.
        if at > 0 && is_ident_byte(code_bytes[at - 1]) {
            continue;
        }
        if code_bytes
            .get(at + "unsafe".len())
            .is_some_and(|&b| is_ident_byte(b))
        {
            continue;
        }
        let line = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
        let after = next_token_after(&code, at + "unsafe".len());
        let kind = match after.as_deref() {
            Some("fn") | Some("extern") => UnsafeKind::Fn,
            Some("impl") => UnsafeKind::Impl,
            Some("trait") => UnsafeKind::Trait,
            _ => UnsafeKind::Block,
        };
        let documented = is_documented(&raw_lines, line, kind);
        sites.push(UnsafeSite {
            line,
            kind,
            documented,
        });
    }
    sites
}

/// The next code token after byte offset `from` (crossing newlines).
fn next_token_after(code: &str, from: usize) -> Option<String> {
    let rest = code[from..].trim_start();
    if rest.is_empty() {
        return None;
    }
    let bytes = rest.as_bytes();
    if !is_ident_byte(bytes[0]) {
        return Some((bytes[0] as char).to_string());
    }
    let end = bytes
        .iter()
        .position(|&b| !is_ident_byte(b))
        .unwrap_or(bytes.len());
    Some(rest[..end].to_string())
}

/// A site is documented when a `SAFETY` marker or `# Safety` doc heading
/// appears nearby: on the site's own line, within the three physical lines
/// above it, on the first line inside an `unsafe {` block, or anywhere in
/// the contiguous run of comments/attributes immediately above (doc
/// blocks on `unsafe fn` declarations).
fn is_documented(raw_lines: &[&str], line: usize, kind: UnsafeKind) -> bool {
    let idx = line - 1; // 0-based
    let has_marker = |l: &str| l.contains("SAFETY") || l.contains("# Safety");

    // Same line and up to 3 physical lines above (covers `let x =` /
    // multi-line signatures between the comment and the keyword).
    let lo = idx.saturating_sub(3);
    if raw_lines[lo..=idx.min(raw_lines.len() - 1)]
        .iter()
        .any(|l| has_marker(l))
    {
        return true;
    }

    // First line inside the block: `unsafe {` at end of line with the
    // justification as the block's opening comment.
    if kind == UnsafeKind::Block {
        if let Some(next) = raw_lines.get(idx + 1) {
            if has_marker(next) {
                return true;
            }
        }
    }

    // Contiguous doc/attribute/comment run above the declaration.
    let mut i = idx;
    let mut budget = 40;
    while i > 0 && budget > 0 {
        i -= 1;
        budget -= 1;
        let t = raw_lines[i].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t.is_empty() {
            if has_marker(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn render_table(inventory: &[(String, Vec<UnsafeSite>)]) -> String {
    let mut out = String::new();
    out.push_str(
        "| File | blocks | fns | impls/traits | documented |\n\
         |---|---:|---:|---:|---:|\n",
    );
    let mut totals = [0usize; 4]; // blocks, fns, impls+traits, documented
    let mut total_sites = 0usize;
    for (file, sites) in inventory {
        let blocks = sites.iter().filter(|s| s.kind == UnsafeKind::Block).count();
        let fns = sites.iter().filter(|s| s.kind == UnsafeKind::Fn).count();
        let impls = sites
            .iter()
            .filter(|s| matches!(s.kind, UnsafeKind::Impl | UnsafeKind::Trait))
            .count();
        let documented = sites.iter().filter(|s| s.documented).count();
        totals[0] += blocks;
        totals[1] += fns;
        totals[2] += impls;
        totals[3] += documented;
        total_sites += sites.len();
        let _ = writeln!(
            out,
            "| `{file}` | {blocks} | {fns} | {impls} | {documented}/{} |",
            sites.len()
        );
    }
    let _ = writeln!(
        out,
        "| **Total** | **{}** | **{}** | **{}** | **{}/{total_sites}** |",
        totals[0], totals[1], totals[2], totals[3]
    );
    out
}

fn splice_between_markers(design: &str, table: &str) -> Result<String, String> {
    let begin = design
        .find(MARKER_BEGIN)
        .ok_or_else(|| format!("unsafe-audit: DESIGN.md is missing the `{MARKER_BEGIN}` marker"))?;
    let end = design
        .find(MARKER_END)
        .ok_or_else(|| format!("unsafe-audit: DESIGN.md is missing the `{MARKER_END}` marker"))?;
    if end < begin {
        return Err("unsafe-audit: DESIGN.md inventory markers are out of order".to_string());
    }
    let mut out = String::with_capacity(design.len() + table.len());
    out.push_str(&design[..begin + MARKER_BEGIN.len()]);
    out.push('\n');
    out.push_str(table);
    out.push_str(&design[end..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_block_fn_impl_trait() {
        let src = "\
fn f() {
    // SAFETY: fine.
    unsafe { g() }
}
/// # Safety
/// contract
unsafe fn g() {}
// SAFETY: no shared state.
unsafe impl Send for X {}
struct Y;
struct Z;
unsafe trait T {}
";
        let sites = scan_source(src);
        let kinds: Vec<UnsafeKind> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UnsafeKind::Block,
                UnsafeKind::Fn,
                UnsafeKind::Impl,
                UnsafeKind::Trait
            ]
        );
        assert!(sites[0].documented);
        assert!(sites[1].documented);
        assert!(sites[2].documented);
        assert!(!sites[3].documented, "trait without any marker");
    }

    #[test]
    fn undocumented_block_is_flagged() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented);
    }

    #[test]
    fn safety_comment_inside_block_counts() {
        let src =
            "fn f() {\n    let x = unsafe {\n        // SAFETY: ok.\n        g()\n    };\n}\n";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        let src = "fn f() {\n    let s = \"unsafe { }\";\n    // unsafe { in a comment }\n}\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn lint_name_is_not_a_keyword_hit() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\nfn main() {}\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn doc_block_above_attributes_counts() {
        let src = "\
/// Does scary things.
///
/// # Safety
/// Caller must hold the lock.
#[inline]
#[allow(clippy::mut_from_ref)]
pub unsafe fn scary() {}
";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, UnsafeKind::Fn);
        assert!(sites[0].documented);
    }

    #[test]
    fn lifetimes_do_not_break_the_lexer() {
        let src =
            "fn f<'a>(x: &'a str) -> &'a str {\n    // SAFETY: no-op.\n    unsafe { g(x) }\n}\n";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn char_literals_are_blanked() {
        let src = "fn f() { let q = '\"'; let u = 'u'; unsafe { g() } }\n";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1, "the quote char must not open a string");
    }

    #[test]
    fn splice_replaces_only_marked_region() {
        let design = format!("# Doc\n\n{MARKER_BEGIN}\nold\n{MARKER_END}\n\ntail\n");
        let out = splice_between_markers(&design, "new\n").unwrap();
        assert!(out.contains("new"));
        assert!(!out.contains("old"));
        assert!(out.starts_with("# Doc"));
        assert!(out.ends_with("tail\n"));
    }

    #[test]
    fn missing_markers_error() {
        assert!(splice_between_markers("no markers here", "t").is_err());
    }

    #[test]
    fn multiline_signature_fn_with_doc_safety() {
        let src = "\
/// Frees the thing.
///
/// # Safety
/// Pointer must be live.
unsafe fn free_it<'a>(
    ptr: *mut u8,
    len: usize,
) {
    // SAFETY: forwarded.
    unsafe { drop_raw(ptr, len) }
}
";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.documented));
    }
}
