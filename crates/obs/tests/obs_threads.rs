//! Cross-thread recording test: counters and histograms must accumulate
//! exactly (no tearing, no lost updates) when hammered from many threads.
//! Only meaningful with telemetry compiled in.
#![cfg(feature = "obs")]

use std::time::Duration;

use rpb_obs::{metrics, Counter, DurationHisto, MaxCounter, PerThreadCounter};

#[test]
fn counters_accumulate_across_threads_without_tearing() {
    static C: Counter = Counter::new();
    static M: MaxCounter = MaxCounter::new();
    static P: PerThreadCounter = PerThreadCounter::new();
    static H: DurationHisto = DurationHisto::new();

    let n_threads = 8u64;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..n_threads {
            s.spawn(move || {
                for i in 0..per_thread {
                    C.add(1);
                    M.record(t * per_thread + i);
                    P.add(1);
                    H.record(Duration::from_nanos(i));
                }
            });
        }
    });

    assert_eq!(C.get(), n_threads * per_thread);
    assert_eq!(M.get(), n_threads * per_thread - 1);
    assert_eq!(P.total(), n_threads * per_thread);
    // Each spawned thread lands in its own slot (8 < 64 slots), so the
    // per-thread snapshot exposes the (perfectly balanced) split.
    let slots = P.snapshot();
    assert!(
        slots.len() >= 2,
        "expected multiple active thread slots, got {slots:?}"
    );
    assert_eq!(slots.iter().sum::<u64>(), n_threads * per_thread);

    let h = H.snapshot();
    assert_eq!(h.count, n_threads * per_thread);
    // Sum of 0..per_thread per thread, times n_threads.
    assert_eq!(h.sum_ns, n_threads * (per_thread * (per_thread - 1) / 2));
    assert_eq!(h.max_ns, per_thread - 1);
    assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count);
}

#[test]
fn global_metrics_survive_concurrent_reset_free_recording() {
    // Serialize against other tests touching the global registry by using
    // metrics that only this test writes.
    metrics::RNGIND_CHECKS.reset();
    metrics::RNGIND_CHECK_NS.reset();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..1000 {
                    metrics::RNGIND_CHECKS.add(1);
                    metrics::RNGIND_CHECK_NS.record(Duration::from_nanos(64));
                }
            });
        }
    });
    let snap = metrics::snapshot();
    assert_eq!(snap.counter("rngind_checks"), 4000);
    let h = snap.histo("rngind_check_ns").expect("histo present");
    assert_eq!(h.count, 4000);
    assert_eq!(h.sum_ns, 4000 * 64);
    // 64 ns lands in bucket floor(log2(64))+1 = 7, and nowhere else.
    assert_eq!(h.buckets, vec![(7, 4000)]);
}
