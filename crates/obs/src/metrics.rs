//! The suite-wide metric registry.
//!
//! Every instrumented crate (`rpb-fearless`, `rpb-multiqueue`, `rpb-bench`)
//! records into these statics; the bench harness calls [`reset`] before a
//! timed run and [`snapshot`] after it, attaching the result to the run's
//! JSON record. Central definition keeps the report schema fixed and makes
//! snapshot/reset trivial — no dynamic registration machinery on the hot
//! path.
//!
//! Naming: the `&'static str` JSON keys are the lowercase of the static
//! names; `*_ns` metrics are histograms of durations, everything else is an
//! event count.

use crate::counter::{Counter, MaxCounter, PerThreadCounter};
use crate::histo::DurationHisto;
use crate::snapshot::Snapshot;

macro_rules! define_metrics {
    (
        counters { $($cid:ident => $cname:literal: $cdoc:literal),* $(,)? }
        maxes { $($mid:ident => $mname:literal: $mdoc:literal),* $(,)? }
        histos { $($hid:ident => $hname:literal: $hdoc:literal),* $(,)? }
        per_thread { $($pid:ident => $pname:literal: $pdoc:literal),* $(,)? }
    ) => {
        $(
            #[doc = $cdoc]
            pub static $cid: Counter = Counter::new();
        )*
        $(
            #[doc = $mdoc]
            pub static $mid: MaxCounter = MaxCounter::new();
        )*
        $(
            #[doc = $hdoc]
            pub static $hid: DurationHisto = DurationHisto::new();
        )*
        $(
            #[doc = $pdoc]
            pub static $pid: PerThreadCounter = PerThreadCounter::new();
        )*

        /// Copies every metric out into a [`Snapshot`].
        pub fn snapshot() -> Snapshot {
            Snapshot {
                counters: vec![
                    $(($cname, $cid.get()),)*
                    $(($mname, $mid.get()),)*
                ],
                histos: vec![$(($hname, $hid.snapshot()),)*],
                per_thread: vec![$(($pname, $pid.snapshot()),)*],
            }
        }

        /// Zeroes every metric (call between timed runs).
        pub fn reset() {
            $($cid.reset();)*
            $($mid.reset();)*
            $($hid.reset();)*
            $($pid.reset();)*
        }
    };
}

define_metrics! {
    counters {
        // rpb-fearless: SngInd uniqueness checking (Fig. 5a attribution).
        SNGIND_CHECKS_MARK => "sngind_checks_mark":
            "`validate_offsets` runs using the mark-table strategy.",
        SNGIND_CHECKS_SORT => "sngind_checks_sort":
            "`validate_offsets` runs using the sort strategy.",
        SNGIND_OFFSETS_VALIDATED => "sngind_offsets_validated":
            "Total offsets passed through SngInd uniqueness validation.",
        SNGIND_CHECKS_BITSET => "sngind_checks_bitset":
            "`validate_offsets` runs using the atomic-bitset strategy.",
        SNGIND_MARK_TABLE_BYTES => "sngind_mark_table_bytes":
            "Bytes of mark-table/bitset storage allocated by checks \
             (pool misses only; pool hits allocate nothing).",
        SNGIND_CHECK_FAILURES => "sngind_check_failures":
            "SngInd validations that rejected their offsets.",
        // rpb-fearless: pooled mark-table fast path (Fig. 5a amortization).
        SNGIND_POOL_HITS => "sngind_pool_hits":
            "Mark-table/bitset acquisitions served from the global pool \
             (zero allocation).",
        SNGIND_POOL_MISSES => "sngind_pool_misses":
            "Mark-table/bitset acquisitions that had to allocate fresh \
             storage (cold pool, oversized request, or pool disabled).",
        SNGIND_EPOCH_ROLLOVERS => "sngind_epoch_rollovers":
            "Epoch-stamp wraparounds that forced a full mark-table re-zero.",
        SNGIND_PROOF_REUSES => "sngind_proof_reuses":
            "Indirect iterators constructed from a pre-validated \
             `ValidatedOffsets`/`ValidatedChunks` proof (validation skipped).",
        SNGIND_PROOF_BUILDS => "sngind_proof_builds":
            "`ValidatedOffsets` proofs constructed (one SngInd validation \
             each; reuses are counted separately).",
        RNGIND_PROOF_BUILDS => "rngind_proof_builds":
            "`ValidatedChunks` proofs constructed (one RngInd validation \
             each; reuses are counted separately).",
        // rpb-fearless: RngInd boundary checking (the ~free check).
        RNGIND_CHECKS => "rngind_checks":
            "`validate_chunk_offsets` runs (monotonicity checks).",
        RNGIND_BOUNDARIES_VALIDATED => "rngind_boundaries_validated":
            "Total chunk boundaries passed through RngInd validation.",
        RNGIND_CHECK_FAILURES => "rngind_check_failures":
            "RngInd validations that rejected their boundaries.",
        // rpb-multiqueue: scheduler traffic and contention.
        MQ_PUSHES => "mq_pushes": "Successful MultiQueue pushes.",
        MQ_POPS => "mq_pops": "Successful MultiQueue pops.",
        MQ_EMPTY_POPS => "mq_empty_pops":
            "Pops that found every internal queue empty (returned None).",
        MQ_PUSH_RETRIES => "mq_push_retries":
            "Push attempts that found their random queue's lock contended.",
        MQ_POP_SWEEPS => "mq_pop_sweeps":
            "Pops that fell back to the deterministic full-queue sweep.",
        MQ_RANK_SAMPLES => "mq_rank_samples":
            "Pops whose rank error was sampled by the online sampler.",
        MQ_RANK_ERROR_SUM => "mq_rank_error_sum":
            "Sum of sampled rank errors (mean = sum / samples).",
        MQ_RANK_SAMPLER_MISSES => "mq_rank_sampler_misses":
            "Pops the online sampler's mirror never saw (drain or races \
             around sampler enablement).",
        MQ_DRAINED_ITEMS => "mq_drained_items":
            "Elements removed through `MultiQueue::drain` (sequential \
             drains, including the executor's post-panic cleanup).",
        // rpb-multiqueue executor: per-run totals.
        EXEC_RUNS => "exec_runs":
            "MultiQueue executor invocations (`execute`/`try_execute`).",
        EXEC_TASKS => "exec_tasks": "Tasks executed by MultiQueue workers.",
        EXEC_IDLE_SPINS => "exec_idle_spins":
            "Times a MultiQueue worker found no work and yielded.",
        EXEC_TASK_PANICS => "exec_task_panics":
            "Executor runs aborted because a task panicked.",
        EXEC_TASKS_DRAINED => "exec_tasks_drained":
            "Queued tasks dropped while unwinding a panicked executor run.",
        // rpb-parlay: radix-sort raw-speed pass (scratch reuse + AVX2).
        RADIX_SCRATCH_BYTES_SAVED => "radix_scratch_bytes_saved":
            "Bytes of per-pass counts/transposed scratch allocation avoided \
             by reusing one buffer pair across radix digit passes.",
        RADIX_SIMD_PASSES => "radix_simd_passes":
            "Radix counting-sort passes whose digit histogram ran on the \
             AVX2 path.",
        RADIX_TRIVIAL_PASSES_ELIDED => "radix_trivial_passes_elided":
            "Radix passes reduced to a block copy because a single digit \
             bucket held every element (fast path only).",
        // SIMD dispatch accounting (never hard-gated: these legitimately
        // differ between scalar and simd kernel implementations).
        SNGIND_SIMD_SWEEPS => "sngind_simd_sweeps":
            "Fused SngInd validation sweeps taken by the AVX2 bounds \
             pre-scan path.",
        RNGIND_SIMD_SWEEPS => "rngind_simd_sweeps":
            "RngInd boundary sweeps taken by the AVX2 bounds+monotonicity \
             path.",
        HIST_SIMD_BLOCKS => "hist_simd_blocks":
            "Histogram input blocks bucketed by the AVX2 multiply-shift \
             path.",
        // rpb-graph: cache-aware traversal pass.
        GRAPH_PREFETCH_ROWS => "graph_prefetch_rows":
            "CSR adjacency rows software-prefetched ahead of frontier \
             expansion.",
        // rpb-bench: Rayon pool lifecycle.
        POOL_THREADS_STARTED => "pool_threads_started":
            "Rayon worker threads started by instrumented pools.",
        // rpb-serve: benchmark-as-a-service admission control and farm
        // dispatch (deterministic under the pinned-trace gate cells).
        SERVE_JOBS_ADMITTED => "serve_jobs_admitted":
            "Jobs accepted into the serve dispatch queue.",
        SERVE_JOBS_SHED => "serve_jobs_shed":
            "Jobs rejected at admission because the dispatch queue was at \
             its depth cap (typed shed response, never a blocked producer).",
        SERVE_JOBS_COMPLETED => "serve_jobs_completed":
            "Admitted jobs that ran to completion on a farm worker.",
        SERVE_JOBS_FAILED => "serve_jobs_failed":
            "Admitted jobs that failed (worker-caught panic or typed job \
             error); the farm keeps serving after each.",
        SERVE_FRAMES_MALFORMED => "serve_frames_malformed":
            "rpb-jobs-v1 frames rejected as malformed (connection \
             survives with a typed error response).",
        SERVE_CONNS_ACCEPTED => "serve_conns_accepted":
            "TCP connections accepted by the serve listener.",
        // rpb-pipeline: streaming skeleton traffic (deterministic
        // functions of the input under the pipeline-* gate cells —
        // item/send/recv counts don't depend on scheduling or channel
        // backend, only on input size, chunking, and stage shape).
        PIPELINE_RUNS => "pipeline_runs":
            "Pipeline executions dispatched (clean or panicked).",
        PIPELINE_ITEMS_IN => "pipeline_items_in":
            "Items emitted by pipeline sources into their first channel.",
        PIPELINE_ITEMS_OUT => "pipeline_items_out":
            "Items folded by pipeline sinks out of their last channel.",
        PIPELINE_SENDS => "pipeline_sends":
            "Successful bounded-channel sends across all pipeline stages.",
        PIPELINE_RECVS => "pipeline_recvs":
            "Successful bounded-channel recvs across all pipeline stages.",
        PIPELINE_STAGE_PANICS => "pipeline_stage_panics":
            "Pipeline runs that surfaced a typed stage panic \
             (`PipelineError::StagePanicked`) instead of a result.",
    }
    maxes {
        MQ_RANK_ERROR_MAX => "mq_rank_error_max":
            "Largest sampled MultiQueue rank error.",
        SERVE_QUEUE_DEPTH_MAX => "serve_queue_depth_max":
            "Deepest the serve dispatch queue ever got (admission-control \
             high-water mark; never exceeds the configured cap).",
        PIPELINE_MAX_INFLIGHT => "pipeline_max_inflight":
            "High-water mark of items resident in pipeline channels \
             (bounded-memory claim: never exceeds capacity × channels; \
             scheduling-dependent below that bound, so never hard-gated).",
    }
    histos {
        SNGIND_CHECK_NS => "sngind_check_ns":
            "Wall time of each SngInd uniqueness validation.",
        RNGIND_CHECK_NS => "rngind_check_ns":
            "Wall time of each RngInd monotonicity validation.",
        POOL_THREAD_LIFETIME_NS => "pool_thread_lifetime_ns":
            "Lifetime of each instrumented Rayon worker thread.",
        // rpb-serve: per-endpoint service latency (queue wait + execution),
        // the SLO histograms behind the serve report's p50/p99 columns.
        SERVE_SORT_NS => "serve_sort_ns":
            "Service latency of each `sort` job (admission to response).",
        SERVE_ISORT_NS => "serve_isort_ns":
            "Service latency of each `isort` job (admission to response).",
        SERVE_DEDUP_NS => "serve_dedup_ns":
            "Service latency of each `dedup` job (admission to response).",
        SERVE_HIST_NS => "serve_hist_ns":
            "Service latency of each `hist` job (admission to response).",
        SERVE_BFS_NS => "serve_bfs_ns":
            "Service latency of each `bfs` job (admission to response).",
        SERVE_SSSP_NS => "serve_sssp_ns":
            "Service latency of each `sssp` job (admission to response).",
    }
    per_thread {
        SNGIND_ITEMS => "sngind_items":
            "SngInd elements written, attributed to the executing thread \
             (task-imbalance proxy).",
        RNGIND_CHUNKS => "rngind_chunks":
            "RngInd chunks written, attributed to the executing thread.",
    }
}

/// Runs `f` against a zeroed registry and returns its result together with
/// the [`Snapshot`] of everything it recorded.
///
/// This is the per-run attribution primitive behind the perf gate: the
/// registry is process-global, so without the reset/snapshot bracket a
/// counter value is the sum of everything since startup rather than a
/// property of one run. Not reentrant (the registry is global) — callers
/// must not nest captures or run concurrent instrumented work they do not
/// want attributed to `f`.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    reset();
    let out = f();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_schema_is_stable() {
        let snap = snapshot();
        for name in [
            "sngind_checks_mark",
            "sngind_checks_bitset",
            "sngind_pool_hits",
            "sngind_pool_misses",
            "sngind_epoch_rollovers",
            "sngind_proof_reuses",
            "sngind_offsets_validated",
            "mq_pushes",
            "mq_empty_pops",
            "mq_rank_error_max",
            "exec_tasks",
            "pool_threads_started",
        ] {
            assert!(
                snap.counters.iter().any(|(n, _)| *n == name),
                "missing counter {name}"
            );
        }
        assert!(snap.histo("sngind_check_ns").is_some());
        assert!(snap.histo("pool_thread_lifetime_ns").is_some());
    }

    #[test]
    fn capture_attributes_only_the_closure() {
        EXEC_RUNS.add(100); // pre-existing noise the capture must discard
        let (out, snap) = capture(|| {
            EXEC_RUNS.add(7);
            42u32
        });
        assert_eq!(out, 42);
        if crate::enabled() {
            assert_eq!(snap.counter("exec_runs"), 7);
        } else {
            assert_eq!(snap.counter("exec_runs"), 0);
        }
        reset();
    }

    #[test]
    fn reset_zeroes_everything() {
        MQ_PUSHES.add(5);
        SNGIND_CHECK_NS.record(std::time::Duration::from_nanos(100));
        reset();
        let snap = snapshot();
        assert!(snap.is_empty());
    }
}
