//! Relaxed-atomic event counters, sharded to keep concurrent increments off
//! a single contended cache line. All types are zero-sized no-ops when the
//! `obs` feature is off.

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards for [`Counter`]; increments hash the calling thread to
/// a shard, reads sum all of them.
#[cfg(feature = "obs")]
const COUNTER_SHARDS: usize = 16;

/// Number of thread slots for [`PerThreadCounter`]. Threads beyond this
/// many alias slots (the imbalance picture degrades gracefully).
pub const THREAD_SLOTS: usize = 64;

/// A cache-line-padded atomic cell.
#[cfg(feature = "obs")]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[cfg(feature = "obs")]
impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A small dense id for the calling thread, assigned on first use.
#[cfg(feature = "obs")]
pub(crate) fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// A monotonically increasing event counter.
///
/// `add` is a relaxed `fetch_add` on a thread-sharded cell; `get` sums the
/// shards (exact once writers are quiescent, which is when the harness
/// snapshots). Zero-sized no-op without the `obs` feature.
pub struct Counter {
    #[cfg(feature = "obs")]
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Creates a zeroed counter (usable in `static`s).
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "obs")]
            shards: [const { PaddedU64::new() }; COUNTER_SHARDS],
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "obs")]
        {
            let slot = thread_slot() % COUNTER_SHARDS;
            self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// Current total (sums shards; exact when writers are quiescent).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.shards
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        #[cfg(feature = "obs")]
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A running maximum over observed values.
pub struct MaxCounter {
    #[cfg(feature = "obs")]
    max: AtomicU64,
}

impl MaxCounter {
    /// Creates a zeroed max-counter.
    pub const fn new() -> Self {
        MaxCounter {
            #[cfg(feature = "obs")]
            max: AtomicU64::new(0),
        }
    }

    /// Records `v`, keeping the maximum seen so far.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "obs")]
        self.max.fetch_max(v, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = v;
    }

    /// Largest value recorded since the last reset (0 if none).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Zeroes the maximum.
    pub fn reset(&self) {
        #[cfg(feature = "obs")]
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for MaxCounter {
    fn default() -> Self {
        MaxCounter::new()
    }
}

/// Per-thread-slot counters: each thread adds to its own slot, so a
/// snapshot exposes work imbalance across the pool (min/max/active slots).
pub struct PerThreadCounter {
    #[cfg(feature = "obs")]
    slots: [PaddedU64; THREAD_SLOTS],
}

impl PerThreadCounter {
    /// Creates a zeroed per-thread counter.
    pub const fn new() -> Self {
        PerThreadCounter {
            #[cfg(feature = "obs")]
            slots: [const { PaddedU64::new() }; THREAD_SLOTS],
        }
    }

    /// Adds `n` to the calling thread's slot.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "obs")]
        {
            let slot = thread_slot() % THREAD_SLOTS;
            self.slots[slot].0.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// Total across all slots.
    pub fn total(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Non-zero slot values (one per active thread, order arbitrary).
    pub fn snapshot(&self) -> Vec<u64> {
        #[cfg(feature = "obs")]
        {
            self.slots
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .filter(|&v| v != 0)
                .collect()
        }
        #[cfg(not(feature = "obs"))]
        {
            Vec::new()
        }
    }

    /// Zeroes every slot.
    pub fn reset(&self) {
        #[cfg(feature = "obs")]
        for s in &self.slots {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for PerThreadCounter {
    fn default() -> Self {
        PerThreadCounter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        if crate::enabled() {
            assert_eq!(c.get(), 12);
        }
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn max_counter_keeps_max() {
        let m = MaxCounter::new();
        m.record(3);
        m.record(9);
        m.record(4);
        if crate::enabled() {
            assert_eq!(m.get(), 9);
        } else {
            assert_eq!(m.get(), 0);
        }
        m.reset();
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn per_thread_counter_totals() {
        let p = PerThreadCounter::new();
        p.add(10);
        p.add(1);
        if crate::enabled() {
            assert_eq!(p.total(), 11);
            assert_eq!(p.snapshot().iter().sum::<u64>(), 11);
        } else {
            assert_eq!(p.total(), 0);
            assert!(p.snapshot().is_empty());
        }
    }
}
