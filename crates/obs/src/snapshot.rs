//! Point-in-time copies of the metric registry, convertible to JSON.

use crate::json::Json;

/// Copied-out state of one [`crate::DurationHisto`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration in nanoseconds.
    pub max_ns: u64,
    /// `(bucket_index, count)` for every non-empty power-of-two bucket.
    pub buckets: Vec<(u32, u64)>,
}

impl HistoSnapshot {
    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_ns / self.count
        }
    }

    /// Upper bound (in nanoseconds) of the bucket containing the `q`
    /// quantile (`0.0 ≤ q ≤ 1.0`), or 0 when empty. Resolution is the
    /// power-of-two bucket width — coarse, but monotone and cheap, which
    /// is all the serve SLO report needs from p50/p99.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return crate::histo::bucket_upper_ns(bucket as usize);
            }
        }
        self.max_ns
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count)),
            ("sum_ns".into(), Json::from_u64(self.sum_ns)),
            ("mean_ns".into(), Json::from_u64(self.mean_ns())),
            ("max_ns".into(), Json::from_u64(self.max_ns)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(b, c)| Json::Arr(vec![Json::from_u64(b as u64), Json::from_u64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A copy of every metric in [`crate::metrics`] at one instant.
///
/// The schema (set of names) is identical whether or not the `obs` feature
/// is on — values are simply all zero when it is off — so downstream JSON
/// consumers never need to branch on build configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter and max-counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, state)` for every duration histogram.
    pub histos: Vec<(&'static str, HistoSnapshot)>,
    /// `(name, non-zero per-thread values)` for every per-thread counter.
    pub per_thread: Vec<(&'static str, Vec<u64>)>,
}

impl Snapshot {
    /// Value of a named counter (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// State of a named histogram, if present.
    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histos.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Non-zero per-thread values of a named per-thread counter.
    pub fn per_thread(&self, name: &str) -> &[u64] {
        self.per_thread
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(&[][..], |(_, v)| v.as_slice())
    }

    /// True when no counter fired and no histogram recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0) && self.histos.iter().all(|(_, h)| h.count == 0)
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "histos": {...}, "per_thread": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|&(n, v)| (n.to_string(), Json::from_u64(v)))
                        .collect(),
                ),
            ),
            (
                "histos".into(),
                Json::Obj(
                    self.histos
                        .iter()
                        .map(|(n, h)| (n.to_string(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "per_thread".into(),
                Json::Obj(
                    self.per_thread
                        .iter()
                        .map(|(n, vs)| {
                            (
                                n.to_string(),
                                Json::Arr(vs.iter().map(|&v| Json::from_u64(v)).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let snap = Snapshot {
            counters: vec![("a", 3), ("b", 0)],
            histos: vec![(
                "h",
                HistoSnapshot {
                    count: 2,
                    sum_ns: 10,
                    max_ns: 7,
                    buckets: vec![(3, 2)],
                },
            )],
            per_thread: vec![("p", vec![1, 2])],
        };
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histo("h").unwrap().mean_ns(), 5);
        assert_eq!(snap.per_thread("p"), &[1, 2]);
        assert!(!snap.is_empty());
    }

    #[test]
    fn quantiles_walk_buckets() {
        let empty = HistoSnapshot::default();
        assert_eq!(empty.quantile_ns(0.99), 0);

        // 90 samples in bucket 3, 10 in bucket 10: p50 lands in the low
        // bucket, p99 in the high one.
        let h = HistoSnapshot {
            count: 100,
            sum_ns: 0,
            max_ns: 1024,
            buckets: vec![(3, 90), (10, 10)],
        };
        assert_eq!(h.quantile_ns(0.50), crate::histo::bucket_upper_ns(3));
        assert_eq!(h.quantile_ns(0.99), crate::histo::bucket_upper_ns(10));
        assert_eq!(h.quantile_ns(0.0), crate::histo::bucket_upper_ns(3));
        assert_eq!(h.quantile_ns(1.0), crate::histo::bucket_upper_ns(10));
    }

    #[test]
    fn json_round_trip() {
        let snap = Snapshot {
            counters: vec![("mq_pushes", 42)],
            histos: vec![(
                "check_ns",
                HistoSnapshot {
                    count: 1,
                    sum_ns: 100,
                    max_ns: 100,
                    buckets: vec![(7, 1)],
                },
            )],
            per_thread: vec![("items", vec![5])],
        };
        let text = snap.to_json().to_string();
        let parsed = Json::parse(&text).expect("parse back");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("mq_pushes"))
                .and_then(Json::as_u64),
            Some(42)
        );
        assert_eq!(
            parsed
                .get("histos")
                .and_then(|h| h.get("check_ns"))
                .and_then(|h| h.get("mean_ns"))
                .and_then(Json::as_u64),
            Some(100)
        );
    }
}
