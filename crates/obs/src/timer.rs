//! RAII scope timers recording into a [`DurationHisto`].
//!
//! Without the `obs` feature the timer is a zero-sized struct whose
//! constructor and `Drop` are empty — crucially, **no `Instant::now()`
//! clock read happens**, so timing call sites really are free when
//! telemetry is off.

use crate::histo::DurationHisto;

#[cfg(feature = "obs")]
use std::time::Instant;

/// Records the time from construction to drop into a histogram.
pub struct ScopedTimer<'a> {
    #[cfg(feature = "obs")]
    histo: &'a DurationHisto,
    #[cfg(feature = "obs")]
    start: Instant,
    #[cfg(not(feature = "obs"))]
    _histo: std::marker::PhantomData<&'a DurationHisto>,
}

impl<'a> ScopedTimer<'a> {
    /// Starts timing into `histo`.
    #[inline]
    pub fn new(histo: &'a DurationHisto) -> Self {
        #[cfg(feature = "obs")]
        {
            ScopedTimer {
                histo,
                start: Instant::now(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = histo;
            ScopedTimer {
                _histo: std::marker::PhantomData,
            }
        }
    }
}

impl Drop for ScopedTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "obs")]
        self.histo.record(self.start.elapsed());
    }
}

/// Times a closure into `histo` and returns its result.
#[inline]
pub fn time<R>(histo: &DurationHisto, f: impl FnOnce() -> R) -> R {
    let _t = ScopedTimer::new(histo);
    f()
}

/// Records the duration of the enclosing scope (from this statement to the
/// end of the block) into the given [`DurationHisto`].
///
/// ```
/// use rpb_obs::{metrics, span};
/// {
///     span!(metrics::SNGIND_CHECK_NS);
///     // ... work being attributed to the check ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($histo:expr) => {
        let _rpb_obs_span_guard = $crate::timer::ScopedTimer::new(&$histo);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scoped_timer_records_once() {
        let h = DurationHisto::new();
        {
            let _t = ScopedTimer::new(&h);
            std::hint::black_box((0..100u64).sum::<u64>());
        }
        if crate::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn time_passes_through_result() {
        let h = DurationHisto::new();
        let v = time(&h, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn span_macro_compiles_and_scopes() {
        let h = DurationHisto::new();
        {
            span!(h);
            std::thread::sleep(Duration::from_millis(1));
        }
        if crate::enabled() {
            assert_eq!(h.count(), 1);
            assert!(h.sum_ns() >= 1_000_000);
        }
    }
}
