//! A dependency-free JSON value, writer, and parser.
//!
//! The harness needs machine-readable run reports (`rpb all --json ...`)
//! and must parse them back (`rpb report`, tests), but the workspace's
//! offline dependency policy (DESIGN.md §3) does not include `serde_json`.
//! This module implements the small JSON subset the reports use — objects,
//! arrays, strings, numbers, booleans, null — in both directions. It is a
//! report-generation utility, never on a benchmark hot path, so it is
//! compiled regardless of the `obs` feature.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact,
    /// which covers every nanosecond total the harness emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs (insertion
    /// order preserved; duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a `u64` (values above 2^53 lose precision,
    /// far beyond any value the harness produces).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Builds a number from a `u128`, saturating at 2^53-ish precision.
    pub fn from_u128(v: u128) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes, which is the
    /// standard grammar minus exotic number forms it never needs).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') | Some(b'n') => {
                if self.eat_keyword("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Json::Bool(false))
                } else if self.eat_keyword("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("unexpected keyword at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free, quote-free run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::from_u64(42), "42"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("bw".into())),
            ("best_ns".into(), Json::from_u64(123_456_789)),
            (
                "arr".into(),
                Json::Arr(vec![Json::from_u64(1), Json::Null, Json::Bool(false)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Num(1.5))]),
            ),
        ]);
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(
            Json::parse(&s).unwrap().get("best_ns").unwrap().as_u64(),
            Some(123_456_789)
        );
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v = Json::parse(" { \"a\" : [ -1.5 , 2e3 ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1.5));
        assert_eq!(arr[1].as_f64(), Some(2000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn large_nanosecond_totals_are_exact() {
        // An hour in ns is ~3.6e12, far inside f64's 2^53 exact range.
        let ns: u64 = 3_600_000_000_000;
        let v = Json::from_u64(ns);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(ns));
    }
}
