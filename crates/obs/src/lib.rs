//! # rpb-obs
//!
//! Lock-free, feature-gated telemetry for the RPB suite.
//!
//! The paper's central claim is that its recommended Rust configuration is
//! *zero-cost*; an instrumentation layer must therefore cost **nothing**
//! unless explicitly enabled, or it would invalidate the very numbers it
//! measures. This crate provides:
//!
//! * [`Counter`] — sharded relaxed-atomic event counters,
//! * [`MaxCounter`] — a running maximum (`fetch_max`),
//! * [`PerThreadCounter`] — per-thread-slot counters for imbalance analysis,
//! * [`DurationHisto`] — power-of-two-bucket duration histograms,
//! * [`ScopedTimer`] / [`span!`] — RAII timers recording into a histogram,
//! * [`metrics`] — the suite-wide named metric statics plus
//!   [`metrics::snapshot`] / [`metrics::reset`] and the per-run
//!   attribution bracket [`metrics::capture`],
//! * [`json`] — a dependency-free JSON writer/parser used by the bench
//!   harness for `--json` run reports.
//!
//! ## Zero cost when off
//!
//! Without the `obs` cargo feature every telemetry type is a zero-sized
//! struct whose methods are empty `#[inline]` bodies: no atomics, no clock
//! reads, no allocation — the optimizer erases every call site. A unit test
//! below pins the zero-size property. With `--features obs` the same API
//! records for real; all writes are relaxed atomics sharded to avoid
//! cache-line ping-pong, so enabling telemetry perturbs timings as little
//! as possible.
//!
//! ## Usage
//!
//! ```
//! use rpb_obs::{metrics, span};
//!
//! {
//!     span!(metrics::SNGIND_CHECK_NS); // records scope duration on drop
//!     metrics::SNGIND_OFFSETS_VALIDATED.add(1024);
//! }
//! let snap = metrics::snapshot();
//! // With `obs` off both reads are 0; with it on they reflect the adds.
//! let _ = snap.counter("sngind_offsets_validated");
//! ```

pub mod counter;
pub mod histo;
pub mod json;
pub mod metrics;
pub mod snapshot;
pub mod timer;

pub use counter::{Counter, MaxCounter, PerThreadCounter};
pub use histo::DurationHisto;
pub use json::Json;
pub use snapshot::{HistoSnapshot, Snapshot};
pub use timer::ScopedTimer;

/// True when this build records telemetry (the `obs` feature is enabled).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_when_off_is_structural() {
        // With the feature off, every telemetry type is zero-sized: there
        // is literally no state to update in the hot path.
        if !enabled() {
            assert_eq!(std::mem::size_of::<Counter>(), 0);
            assert_eq!(std::mem::size_of::<MaxCounter>(), 0);
            assert_eq!(std::mem::size_of::<PerThreadCounter>(), 0);
            assert_eq!(std::mem::size_of::<DurationHisto>(), 0);
        }
    }

    #[test]
    fn api_is_callable_regardless_of_feature() {
        static C: Counter = Counter::new();
        C.add(3);
        let h = DurationHisto::new();
        h.record(std::time::Duration::from_micros(5));
        let snap = metrics::snapshot();
        if enabled() {
            assert_eq!(C.get(), 3);
            assert_eq!(h.snapshot().count, 1);
        } else {
            assert_eq!(C.get(), 0);
            assert_eq!(h.snapshot().count, 0);
        }
        // Snapshot always carries the full schema, so JSON reports are
        // shape-stable across both builds.
        assert!(snap.counters.iter().any(|(n, _)| *n == "mq_pushes"));
        metrics::reset();
    }
}
