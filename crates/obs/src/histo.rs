//! Power-of-two-bucket duration histograms.
//!
//! Bucket `b` holds durations `d` with `floor(log2(d_ns)) + 1 == b`
//! (bucket 0 is exactly 0 ns), i.e. bucket boundaries double — 1 ns, 2 ns,
//! 4 ns, … — covering the full `u64` nanosecond range in 64 buckets plus
//! the zero bucket. Recording is one relaxed `fetch_add` plus two more for
//! the sum/count, so a histogram write is ~3 uncontended atomic adds; the
//! whole type is a zero-sized no-op without the `obs` feature.

use std::time::Duration;

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::HistoSnapshot;

/// Number of buckets: zero bucket + one per bit of a `u64` nanosecond count.
pub const BUCKETS: usize = 65;

/// A concurrent duration histogram with power-of-two buckets.
pub struct DurationHisto {
    #[cfg(feature = "obs")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "obs")]
    count: AtomicU64,
    #[cfg(feature = "obs")]
    sum_ns: AtomicU64,
    #[cfg(feature = "obs")]
    max_ns: AtomicU64,
}

/// Bucket index for a nanosecond value: 0 for 0 ns, else `floor(log2)+1`.
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket in nanoseconds (`u64::MAX` for the
/// last bucket).
pub fn bucket_upper_ns(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl DurationHisto {
    /// Creates an empty histogram (usable in `static`s).
    pub const fn new() -> Self {
        DurationHisto {
            #[cfg(feature = "obs")]
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            #[cfg(feature = "obs")]
            count: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            sum_ns: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        #[cfg(feature = "obs")]
        {
            let ns = d.as_nanos().min(u64::MAX as u128) as u64;
            self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = d;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.sum_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Copies out counts, sum, max, and the non-empty buckets.
    pub fn snapshot(&self) -> HistoSnapshot {
        #[cfg(feature = "obs")]
        {
            HistoSnapshot {
                count: self.count.load(Ordering::Relaxed),
                sum_ns: self.sum_ns.load(Ordering::Relaxed),
                max_ns: self.max_ns.load(Ordering::Relaxed),
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let v = b.load(Ordering::Relaxed);
                        (v != 0).then_some((i as u32, v))
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            HistoSnapshot::default()
        }
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        #[cfg(feature = "obs")]
        {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum_ns.store(0, Ordering::Relaxed);
            self.max_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for DurationHisto {
    fn default() -> Self {
        DurationHisto::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_doubles() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for b in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_index(bucket_upper_ns(b)),
                b,
                "upper bound of bucket {b}"
            );
            assert_eq!(bucket_index(bucket_upper_ns(b) + 1), b + 1);
        }
    }

    #[test]
    fn record_accumulates() {
        let h = DurationHisto::new();
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1000));
        let s = h.snapshot();
        if crate::enabled() {
            assert_eq!(s.count, 2);
            assert_eq!(s.sum_ns, 1003);
            assert_eq!(s.max_ns, 1000);
            assert_eq!(s.buckets, vec![(2, 1), (10, 1)]);
        } else {
            assert_eq!(s.count, 0);
            assert!(s.buckets.is_empty());
        }
        h.reset();
        assert_eq!(h.count(), 0);
    }
}
