//! Adjacency-linked triangle mesh with Bowyer–Watson point insertion.
//!
//! Triangles store their three vertices CCW and, for each vertex, the
//! neighbour across the opposite edge. Insertion digs the *cavity* (all
//! triangles whose circumcircle contains the new point), removes it, and
//! re-triangulates the star of the new point — the operation both the
//! sequential Delaunay builder and the parallel refiner are made of.

use std::collections::HashMap;

use crate::point::Point;
use crate::predicates::{ccw, in_circumcircle, orient2d};

/// Missing-neighbour marker.
pub const NO_TRI: u32 = u32::MAX;

/// One triangle: vertices CCW; `nbr[i]` is across the edge opposite
/// `v[i]` (the edge `v[i+1] – v[i+2]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tri {
    /// Vertex indices into [`Triangulation::points`].
    pub v: [u32; 3],
    /// Neighbour triangle ids ([`NO_TRI`] on the outer boundary).
    pub nbr: [u32; 3],
    /// Dead triangles have been removed by a cavity retriangulation.
    pub alive: bool,
}

/// A growable triangulation over a fixed point set plus three far-away
/// "super-triangle" vertices that keep every insertion interior.
pub struct Triangulation {
    /// Input points, then refinement Steiner points, then the 3 super
    /// vertices at the very end is NOT the layout — super vertices are at
    /// indices `n_input..n_input+3` and Steiner points append after them.
    pub points: Vec<Point>,
    /// Triangle pool (including dead entries).
    pub tris: Vec<Tri>,
    /// Number of original input points.
    pub n_input: usize,
    /// Index of the first super vertex (`n_input`); the three ids
    /// `ghost0..ghost0+3` are the super-triangle corners.
    pub ghost0: usize,
}

/// A planned cavity retriangulation (computed read-only, applied later).
#[derive(Clone, Debug)]
pub struct Cavity {
    /// Triangles to remove.
    pub tris: Vec<u32>,
    /// Directed boundary edges `(a, b)` with the outer triangle and the
    /// slot in the outer triangle that points into the cavity.
    pub boundary: Vec<(u32, u32, u32, u8)>,
}

impl Triangulation {
    /// Creates the initial two-ghost-triangle mesh: a super triangle far
    /// outside the bounding box of `points` (factor ~1e5 of the extent).
    pub fn with_super_triangle(points: &[Point]) -> Triangulation {
        assert!(!points.is_empty(), "need at least one point");
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let cx = (min_x + max_x) / 2.0;
        let cy = (min_y + max_y) / 2.0;
        let extent = ((max_x - min_x).max(max_y - min_y)).max(1e-9);
        let r = extent * 1e5;
        let n = points.len();
        let mut pts = points.to_vec();
        // CCW super triangle enclosing the r-disk around the centroid.
        pts.push(Point::new(cx - 2.0 * r, cy - r));
        pts.push(Point::new(cx + 2.0 * r, cy - r));
        pts.push(Point::new(cx, cy + 2.0 * r));
        let g = n as u32;
        let tris = vec![Tri {
            v: [g, g + 1, g + 2],
            nbr: [NO_TRI; 3],
            alive: true,
        }];
        Triangulation {
            points: pts,
            tris,
            n_input: n,
            ghost0: n,
        }
    }

    /// True if vertex `v` is a super-triangle corner.
    #[inline]
    pub fn is_ghost(&self, v: u32) -> bool {
        (self.ghost0..self.ghost0 + 3).contains(&(v as usize))
    }

    /// True if any corner of triangle `t` is a super vertex.
    pub fn touches_ghost(&self, t: u32) -> bool {
        self.tris[t as usize].v.iter().any(|&v| self.is_ghost(v))
    }

    /// The three corner points of triangle `t`.
    #[inline]
    pub fn corners(&self, t: u32) -> [Point; 3] {
        let tri = &self.tris[t as usize];
        [
            self.points[tri.v[0] as usize],
            self.points[tri.v[1] as usize],
            self.points[tri.v[2] as usize],
        ]
    }

    /// Ids of alive triangles.
    pub fn alive_tris(&self) -> Vec<u32> {
        (0..self.tris.len() as u32)
            .filter(|&t| self.tris[t as usize].alive)
            .collect()
    }

    /// Walks from `hint` to an alive triangle containing `p`.
    ///
    /// Falls back to a linear scan if the walk exceeds a step budget
    /// (robustness escape hatch for near-degenerate walks).
    pub fn locate(&self, p: &Point, hint: u32) -> u32 {
        let mut cur = if (hint as usize) < self.tris.len() && self.tris[hint as usize].alive {
            hint
        } else {
            self.alive_tris()[0]
        };
        let budget = 4 * (self.tris.len() + 16);
        let mut steps = 0usize;
        'walk: loop {
            steps += 1;
            if steps > budget {
                break;
            }
            let tri = &self.tris[cur as usize];
            for i in 0..3 {
                let a = self.points[tri.v[(i + 1) % 3] as usize];
                let b = self.points[tri.v[(i + 2) % 3] as usize];
                if orient2d(&a, &b, p) < 0.0 {
                    let next = tri.nbr[i];
                    if next == NO_TRI {
                        break 'walk; // outside the super triangle: scan
                    }
                    cur = next;
                    continue 'walk;
                }
            }
            return cur;
        }
        // Fallback: exhaustive scan.
        for t in self.alive_tris() {
            if self.contains(t, p) {
                return t;
            }
        }
        panic!("locate: point {p:?} not inside any triangle");
    }

    /// True if `p` is inside (or on the boundary of) triangle `t`.
    pub fn contains(&self, t: u32, p: &Point) -> bool {
        let [a, b, c] = self.corners(t);
        orient2d(&a, &b, p) >= 0.0 && orient2d(&b, &c, p) >= 0.0 && orient2d(&c, &a, p) >= 0.0
    }

    /// Computes the Bowyer–Watson cavity of `p` starting from the
    /// containing triangle `start` (read-only; apply with
    /// [`Triangulation::apply_cavity`]).
    ///
    /// The cavity is post-processed to be *star-shaped* around `p`: when
    /// the conservative in-circle guard leaves a boundary edge that `p`
    /// is not strictly inside of (a near-degenerate case that would emit
    /// a flipped triangle), the outer neighbour is absorbed into the
    /// cavity and the boundary recomputed.
    ///
    /// # Panics
    /// Panics if star-shaping would have to cross the mesh boundary —
    /// impossible for points strictly inside the super triangle.
    pub fn cavity(&self, p: &Point, start: u32) -> Cavity {
        debug_assert!(self.tris[start as usize].alive);
        let mut in_cavity: HashMap<u32, bool> = HashMap::new();
        let mut stack = vec![start];
        in_cavity.insert(start, true);
        while let Some(t) = stack.pop() {
            let nbrs = self.tris[t as usize].nbr;
            for o in nbrs {
                if o == NO_TRI || in_cavity.get(&o).copied().unwrap_or(false) {
                    continue;
                }
                let [a, b, c] = self.corners(o);
                if in_circumcircle(&a, &b, &c, p) {
                    in_cavity.insert(o, true);
                    stack.push(o);
                } else {
                    in_cavity.insert(o, false);
                }
            }
        }
        // Star-shape enforcement + boundary extraction (repeat until no
        // boundary edge is degenerate as seen from p).
        let mut guard_rounds = 0usize;
        loop {
            guard_rounds += 1;
            assert!(
                guard_rounds <= self.tris.len() + 3,
                "cavity star-shaping diverged"
            );
            let tris: Vec<u32> = in_cavity
                .iter()
                .filter_map(|(&t, &inside)| inside.then_some(t))
                .collect();
            let mut boundary = Vec::new();
            let mut absorbed = false;
            for &t in &tris {
                let tri = &self.tris[t as usize];
                for i in 0..3 {
                    let o = tri.nbr[i];
                    let is_inside = o != NO_TRI && in_cavity.get(&o).copied().unwrap_or(false);
                    if is_inside {
                        continue;
                    }
                    let a = tri.v[(i + 1) % 3];
                    let b = tri.v[(i + 2) % 3];
                    let pa = self.points[a as usize];
                    let pb = self.points[b as usize];
                    // p must be strictly left of (a, b) or the emitted
                    // triangle [p, a, b] would be flipped/degenerate.
                    let det = orient2d(p, &pa, &pb);
                    let guard = 1e-12 * pa.dist(&pb) * p.dist(&pa).max(p.dist(&pb));
                    if det <= guard {
                        assert!(
                            o != NO_TRI,
                            "cavity star-shaping hit the outer mesh boundary"
                        );
                        in_cavity.insert(o, true);
                        absorbed = true;
                        break;
                    }
                    let oslot = if o == NO_TRI {
                        0
                    } else {
                        let ot = &self.tris[o as usize];
                        (0..3)
                            .find(|&j| ot.nbr[j] == t)
                            .expect("asymmetric adjacency") as u8
                    };
                    boundary.push((a, b, o, oslot));
                }
                if absorbed {
                    break;
                }
            }
            if !absorbed {
                let mut tris = tris;
                tris.sort_unstable();
                return Cavity { tris, boundary };
            }
        }
    }

    /// Applies a cavity retriangulation for new point id `p_idx` (which
    /// must already be pushed to `points`). Returns the new triangle ids.
    ///
    /// New triangles are appended to `self.tris`.
    pub fn apply_cavity(&mut self, p_idx: u32, cavity: &Cavity) -> Vec<u32> {
        let base = self.tris.len() as u32;
        let k = cavity.boundary.len() as u32;
        // Chain the boundary cycle: start vertex -> (end, outer, oslot).
        let mut next_edge: HashMap<u32, (u32, u32, u8)> =
            HashMap::with_capacity(cavity.boundary.len());
        for &(a, b, o, oslot) in &cavity.boundary {
            let prev = next_edge.insert(a, (b, o, oslot));
            debug_assert!(prev.is_none(), "cavity boundary is not a simple cycle");
        }
        // Kill the cavity.
        for &t in &cavity.tris {
            self.tris[t as usize].alive = false;
        }
        // Emit triangles around the cycle in order.
        let start = cavity.boundary[0].0;
        let mut ids = Vec::with_capacity(k as usize);
        let mut a = start;
        for i in 0..k {
            let (b, o, oslot) = next_edge[&a];
            let t_id = base + i;
            // [p, a, b]: nbr[0] (opposite p) = outer; nbr[1] (opposite a,
            // edge (b,p)) = next new tri; nbr[2] (opposite b, edge (p,a))
            // = previous new tri.
            let nxt = base + (i + 1) % k;
            let prv = base + (i + k - 1) % k;
            self.tris.push(Tri {
                v: [p_idx, a, b],
                nbr: [o, nxt, prv],
                alive: true,
            });
            if o != NO_TRI {
                self.tris[o as usize].nbr[oslot as usize] = t_id;
            }
            ids.push(t_id);
            a = b;
        }
        debug_assert_eq!(a, start, "boundary cycle did not close");
        ids
    }

    /// Inserts point `p` (appending it to `points`) with a locate hint;
    /// returns one of the new triangle ids (a good hint for the next
    /// insertion).
    pub fn insert_point(&mut self, p: Point, hint: u32) -> u32 {
        let start = self.locate(&p, hint);
        let cavity = self.cavity(&p, start);
        let p_idx = self.points.len() as u32;
        self.points.push(p);
        let ids = self.apply_cavity(p_idx, &cavity);
        ids[0]
    }

    /// Structural validity: symmetric adjacency, CCW orientation, edge
    /// agreement. Panics with a description on the first violation.
    pub fn check_valid(&self) {
        for (ti, tri) in self.tris.iter().enumerate() {
            if !tri.alive {
                continue;
            }
            let [a, b, c] = self.corners(ti as u32);
            assert!(ccw(&a, &b, &c), "triangle {ti} not CCW");
            for i in 0..3 {
                let o = tri.nbr[i];
                if o == NO_TRI {
                    continue;
                }
                let ot = &self.tris[o as usize];
                assert!(ot.alive, "triangle {ti} adjacent to dead {o}");
                let j = (0..3).find(|&j| ot.nbr[j] == ti as u32);
                let j = j.unwrap_or_else(|| panic!("adjacency {ti}->{o} not symmetric"));
                // Shared edge vertices must match (reversed orientation).
                let (e1a, e1b) = (tri.v[(i + 1) % 3], tri.v[(i + 2) % 3]);
                let (e2a, e2b) = (ot.v[(j + 1) % 3], ot.v[(j + 2) % 3]);
                assert!(
                    e1a == e2b && e1b == e2a,
                    "edge mismatch between {ti} and {o}: ({e1a},{e1b}) vs ({e2a},{e2b})"
                );
            }
        }
    }

    /// Delaunay property check over non-ghost triangles vs. non-ghost
    /// points — `O(T·N)`; tests only.
    pub fn check_delaunay(&self) {
        for t in self.alive_tris() {
            if self.touches_ghost(t) {
                continue;
            }
            let [a, b, c] = self.corners(t);
            let tv = self.tris[t as usize].v;
            for (pi, p) in self.points.iter().enumerate() {
                if self.is_ghost(pi as u32) || tv.contains(&(pi as u32)) {
                    continue;
                }
                assert!(
                    !in_circumcircle(&a, &b, &c, p),
                    "point {pi} inside circumcircle of triangle {t}"
                );
            }
        }
    }

    /// Number of alive triangles.
    pub fn num_alive(&self) -> usize {
        self.tris.iter().filter(|t| t.alive).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::uniform_points;

    #[test]
    fn super_triangle_contains_all() {
        let pts = uniform_points(50, 1);
        let mesh = Triangulation::with_super_triangle(&pts);
        for p in &pts {
            assert!(mesh.contains(0, p));
        }
        mesh.check_valid();
    }

    #[test]
    fn single_insert_splits_into_three() {
        let pts = vec![Point::new(0.5, 0.5)];
        let mut mesh = Triangulation::with_super_triangle(&pts);
        mesh.insert_point(pts[0], 0);
        assert_eq!(mesh.num_alive(), 3);
        mesh.check_valid();
    }

    #[test]
    fn inserts_stay_valid_and_delaunay() {
        let pts = uniform_points(60, 2);
        let mut mesh = Triangulation::with_super_triangle(&pts);
        let mut hint = 0;
        for &p in &pts {
            hint = mesh.insert_point(p, hint);
            mesh.check_valid();
        }
        mesh.check_delaunay();
        // Euler: with 3 super vertices and n inner points all interior,
        // alive triangles = 2 * (n + 3) - 2 - 3 (hull of super tri = 3).
        let n = pts.len() + 3;
        assert_eq!(mesh.num_alive(), 2 * n - 2 - 3);
    }

    #[test]
    fn locate_finds_containing_triangle() {
        let pts = uniform_points(40, 3);
        let mut mesh = Triangulation::with_super_triangle(&pts);
        let mut hint = 0;
        for &p in &pts {
            hint = mesh.insert_point(p, hint);
        }
        let q = Point::new(0.25, 0.75);
        let t = mesh.locate(&q, hint);
        assert!(mesh.contains(t, &q));
        let t2 = mesh.locate(&q, 0); // stale hint
        assert!(mesh.contains(t2, &q));
    }

    #[test]
    fn cavity_is_connected_and_boundary_cycles() {
        let pts = uniform_points(30, 4);
        let mut mesh = Triangulation::with_super_triangle(&pts);
        let mut hint = 0;
        for &p in &pts[..29] {
            hint = mesh.insert_point(p, hint);
        }
        let p = pts[29];
        let start = mesh.locate(&p, hint);
        let cav = mesh.cavity(&p, start);
        assert!(!cav.tris.is_empty());
        // Boundary forms one simple cycle: starts are unique, ends match.
        let starts: std::collections::HashSet<u32> =
            cav.boundary.iter().map(|&(a, ..)| a).collect();
        let ends: std::collections::HashSet<u32> =
            cav.boundary.iter().map(|&(_, b, ..)| b).collect();
        assert_eq!(starts.len(), cav.boundary.len());
        assert_eq!(starts, ends);
    }
}
