//! 2D points and input generators.

use rpb_parlay::random::Random;

/// A 2D point.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        dx * dx + dy * dy
    }
}

/// Generates `n` points with PBBS's Kuzmin-disk radial distribution
/// (`F(r) = 1 - 1/(1 + r²)`), the paper's `kuzmin` input for `dr`.
///
/// The heavy-tailed radial density concentrates points near the origin
/// with a sparse halo — the non-uniform density that stresses Delaunay
/// refinement. The tail is truncated at the 98th radial percentile
/// (`r ≈ 7`); the untruncated distribution puts stray points at radius
/// `10⁵`+, whose sliver triangles need unbounded Steiner insertion under
/// a super-triangle boundary (full Ruppert segment handling is a
/// non-goal, see DESIGN.md). A per-point pseudo-random jitter keeps the
/// set in general position (no exact duplicates), which the plain-`f64`
/// predicates rely on.
pub fn kuzmin_points(n: usize, seed: u64) -> Vec<Point> {
    use rayon::prelude::*;
    let r = Random::new(seed);
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let u = r.ith_rand_f64(2 * i).clamp(1e-12, 1.0 - 1e-12) * 0.98;
            let radius = (u / (1.0 - u)).sqrt();
            let theta = r.ith_rand_f64(2 * i + 1) * std::f64::consts::TAU;
            // Tiny deterministic jitter avoids exact collinearity.
            let jx = (r.ith_rand_f64(i.wrapping_mul(31) + 7) - 0.5) * 1e-9;
            let jy = (r.ith_rand_f64(i.wrapping_mul(37) + 11) - 0.5) * 1e-9;
            Point::new(radius * theta.cos() + jx, radius * theta.sin() + jy)
        })
        .collect()
}

/// Uniform points in the unit square (alternative test distribution).
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    use rayon::prelude::*;
    let r = Random::new(seed);
    (0..n as u64)
        .into_par_iter()
        .map(|i| Point::new(r.ith_rand_f64(2 * i), r.ith_rand_f64(2 * i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kuzmin_is_deterministic() {
        assert_eq!(kuzmin_points(100, 1), kuzmin_points(100, 1));
    }

    #[test]
    fn kuzmin_is_centrally_concentrated() {
        let pts = kuzmin_points(10_000, 2);
        let near = pts
            .iter()
            .filter(|p| p.dist2(&Point::default()) < 1.0)
            .count();
        // F(1) = 1 - 1/2 = 0.5: about half the mass inside radius 1.
        assert!((4000..6000).contains(&near), "near-origin count {near}");
    }

    #[test]
    fn no_duplicate_points() {
        let pts = kuzmin_points(20_000, 3);
        let mut keys: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), pts.len(), "duplicate points generated");
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist2(&b) - 25.0).abs() < 1e-12);
    }
}
