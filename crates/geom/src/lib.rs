//! # rpb-geom
//!
//! Geometry substrate for the `dr` (Delaunay refinement) benchmark:
//!
//! * [`point`] — 2D points and the Kuzmin-disk input generator standing in
//!   for the paper's `kuzmin` point set,
//! * [`predicates`] — orientation and in-circle determinants,
//! * [`mesh`] — an adjacency-linked triangle mesh with Bowyer–Watson
//!   point insertion and structural validity checks,
//! * [`mod@delaunay`] — sequential incremental Delaunay triangulation,
//! * [`mod@refine`] — Ruppert-style refinement; the parallel variant selects
//!   independent skinny-triangle cavities per round with deterministic
//!   reservations (the paper's `AW` + `SngInd`/`RngInd` mix for `dr`).

pub mod delaunay;
pub mod mesh;
pub mod point;
pub mod predicates;
pub mod refine;

pub use delaunay::delaunay;
pub use mesh::{Triangulation, NO_TRI};
pub use point::{kuzmin_points, Point};
pub use refine::{refine, refine_seq, RefineParams, RefineStats};
