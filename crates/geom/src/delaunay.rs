//! Sequential incremental Delaunay triangulation.
//!
//! Builds the triangulation the `dr` benchmark refines. Points are
//! inserted in Morton (Z-curve) order so the walk-based point location
//! from the previous insertion's triangle is short — the standard spatial
//! sorting trick for incremental Delaunay.

use crate::mesh::Triangulation;
use crate::point::Point;

/// Builds the Delaunay triangulation of `points` (plus the internal super
/// triangle; see [`Triangulation`]).
pub fn delaunay(points: &[Point]) -> Triangulation {
    let mut mesh = Triangulation::with_super_triangle(points);
    let order = morton_order(points);
    let mut hint = 0u32;
    for &i in &order {
        hint = mesh.insert_point(points[i], hint);
    }
    mesh
}

/// Indices of `points` sorted along a Z-order curve.
pub fn morton_order(points: &[Point]) -> Vec<usize> {
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let sx = (max_x - min_x).max(1e-30);
    let sy = (max_y - min_y).max(1e-30);
    let mut keyed: Vec<(u64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let qx = (((p.x - min_x) / sx) * ((1u32 << 16) - 1) as f64) as u32;
            let qy = (((p.y - min_y) / sy) * ((1u32 << 16) - 1) as f64) as u32;
            (interleave16(qx) | (interleave16(qy) << 1), i)
        })
        .collect();
    rpb_parlay::radix_sort_by_key(&mut keyed, 32, |k| k.0);
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Spreads the low 16 bits of `x` into even bit positions.
fn interleave16(x: u32) -> u64 {
    let mut x = x as u64 & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{kuzmin_points, uniform_points};

    #[test]
    fn delaunay_of_uniform_points_is_delaunay() {
        let pts = uniform_points(150, 1);
        let mesh = delaunay(&pts);
        mesh.check_valid();
        mesh.check_delaunay();
    }

    #[test]
    fn delaunay_of_kuzmin_points_is_delaunay() {
        let pts = kuzmin_points(150, 2);
        let mesh = delaunay(&pts);
        mesh.check_valid();
        mesh.check_delaunay();
    }

    #[test]
    fn triangle_count_matches_euler() {
        // All input points interior to the super triangle: T = 2(n+3)-5.
        let pts = uniform_points(100, 3);
        let mesh = delaunay(&pts);
        assert_eq!(mesh.num_alive(), 2 * (pts.len() + 3) - 5);
    }

    #[test]
    fn morton_order_is_a_permutation() {
        let pts = uniform_points(500, 4);
        let ord = morton_order(&pts);
        let mut seen = vec![false; pts.len()];
        for &i in &ord {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn interleave_bits() {
        assert_eq!(interleave16(0b11), 0b101);
        assert_eq!(interleave16(0xFFFF), 0x5555_5555);
    }

    #[test]
    fn larger_build_is_structurally_valid() {
        let pts = kuzmin_points(2000, 5);
        let mesh = delaunay(&pts);
        mesh.check_valid();
        assert_eq!(mesh.num_alive(), 2 * (pts.len() + 3) - 5);
    }
}
