//! Orientation and in-circle predicates.
//!
//! Plain `f64` determinants with a relative-error guard band. The input
//! generator jitters points into general position, so adaptive exact
//! arithmetic (Shewchuk) is out of scope (documented in DESIGN.md); the
//! guard band makes near-degenerate cases conservative rather than
//! inconsistent.

use crate::point::Point;

/// Sign of the signed area of triangle `(a, b, c)`:
/// `> 0` counter-clockwise, `< 0` clockwise, `0` (near-)collinear.
#[inline]
pub fn orient2d(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// True if `(a, b, c)` makes a strict counter-clockwise turn.
#[inline]
pub fn ccw(a: &Point, b: &Point, c: &Point) -> bool {
    orient2d(a, b, c) > 0.0
}

/// In-circle test: positive if `d` lies strictly inside the circumcircle
/// of CCW triangle `(a, b, c)`.
pub fn incircle(a: &Point, b: &Point, c: &Point, d: &Point) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;
    adx * (bdy * cd2 - bd2 * cdy) - ady * (bdx * cd2 - bd2 * cdx) + ad2 * (bdx * cdy - bdy * cdx)
}

/// True if `d` is strictly inside the circumcircle of CCW `(a, b, c)`,
/// with a relative guard band so round-off near the circle boundary
/// reads as "outside" (conservative for Bowyer–Watson cavities).
///
/// The guard scales with the magnitude of the determinant's own terms
/// (the standard static error-bound structure from Shewchuk's robust
/// predicates), not with global coordinate magnitude — tiny triangles
/// far from the origin must still test accurately.
pub fn in_circumcircle(a: &Point, b: &Point, c: &Point, d: &Point) -> bool {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;
    let det = adx * (bdy * cd2 - bd2 * cdy) - ady * (bdx * cd2 - bd2 * cdx)
        + ad2 * (bdx * cdy - bdy * cdx);
    // Sum of absolute values of the expansion's terms bounds the rounding
    // error up to a small constant factor of machine epsilon.
    let mag = adx.abs() * (bdy.abs() * cd2 + bd2 * cdy.abs())
        + ady.abs() * (bdx.abs() * cd2 + bd2 * cdx.abs())
        + ad2 * (bdx.abs() * cdy.abs() + bdy.abs() * cdx.abs());
    det > 1e-12 * mag
}

/// Circumcenter of triangle `(a, b, c)`. Returns `None` when the triangle
/// is (near-)degenerate.
pub fn circumcenter(a: &Point, b: &Point, c: &Point) -> Option<Point> {
    let d = 2.0 * orient2d(a, b, c);
    if d.abs() < 1e-30 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    if !ux.is_finite() || !uy.is_finite() {
        return None;
    }
    Some(Point::new(ux, uy))
}

/// Circumradius-to-shortest-edge ratio of `(a, b, c)` — Ruppert's quality
/// measure. `None` for degenerate triangles.
pub fn radius_edge_ratio(a: &Point, b: &Point, c: &Point) -> Option<f64> {
    let cc = circumcenter(a, b, c)?;
    let r = cc.dist(a);
    let shortest = a.dist(b).min(b.dist(c)).min(c.dist(a));
    if shortest <= 0.0 {
        return None;
    }
    Some(r / shortest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(orient2d(&a, &b, &c) > 0.0);
        assert!(orient2d(&a, &c, &b) < 0.0);
        let d = Point::new(2.0, 0.0);
        assert_eq!(orient2d(&a, &b, &d), 0.0);
    }

    #[test]
    fn incircle_unit_circle() {
        // Circumcircle of this CCW triangle is the unit circle.
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let c = Point::new(-1.0, 0.0);
        assert!(in_circumcircle(&a, &b, &c, &Point::new(0.0, 0.0)));
        assert!(!in_circumcircle(&a, &b, &c, &Point::new(2.0, 0.0)));
        assert!(
            !in_circumcircle(&a, &b, &c, &Point::new(0.0, -1.0)),
            "on-circle is outside"
        );
    }

    #[test]
    fn circumcenter_of_right_triangle() {
        // Right triangle: circumcenter at hypotenuse midpoint.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(0.0, 2.0);
        let cc = circumcenter(&a, &b, &c).expect("non-degenerate");
        assert!((cc.x - 1.0).abs() < 1e-12);
        assert!((cc.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_returns_none() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert!(circumcenter(&a, &b, &c).is_none());
        assert!(radius_edge_ratio(&a, &b, &c).is_none());
    }

    #[test]
    fn equilateral_has_minimal_ratio() {
        // Equilateral triangle: R/e = 1/sqrt(3) ≈ 0.577, the global min.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.5, 3f64.sqrt() / 2.0);
        let q = radius_edge_ratio(&a, &b, &c).expect("ok");
        assert!((q - 1.0 / 3f64.sqrt()).abs() < 1e-9);
        // A skinny triangle has a much larger ratio.
        let skinny = radius_edge_ratio(&a, &b, &Point::new(0.5, 0.01)).expect("ok");
        assert!(skinny > 5.0);
    }
}
