//! Delaunay refinement (`dr`): eliminate skinny triangles by inserting
//! circumcenters, in parallel rounds coordinated with deterministic
//! reservations.
//!
//! Per round:
//! 1. collect skinny alive triangles (read-only filter — `RO`),
//! 2. plan each insertion: circumcenter, containing triangle, cavity and
//!    the *affected set* (cavity ∪ its outer neighbours) — read-only,
//! 3. every plan reserves its affected triangles by priority
//!    (`ReservationStation` `write_min`s — the `AW` phase),
//! 4. plans holding **all** their reservations win; winners are assigned
//!    triangle/point id ranges by a prefix sum (deterministic ids),
//! 5. winners apply their cavity retriangulations in parallel through a
//!    raw shared view — sound because affected sets of winners are
//!    disjoint by construction (each reserved cell has one holder).
//!
//! Losers retry next round. Skinny triangles whose circumcenter lands in
//! super-triangle territory are marked unrefinable (the stand-in for
//! PBBS's boundary/encroachment handling), which with Ruppert's ratio
//! bound `√2` guarantees termination.

use rayon::prelude::*;

use rpb_concurrent::reservations::ReservationStation;
use rpb_fearless::SharedMutSlice;

use crate::mesh::{Cavity, Tri, Triangulation, NO_TRI};
use crate::point::Point;
use crate::predicates::{circumcenter, radius_edge_ratio};

/// Refinement configuration.
#[derive(Clone, Copy, Debug)]
pub struct RefineParams {
    /// Quality bound: triangles with circumradius/shortest-edge ratio
    /// above this are skinny. Ruppert termination needs `>= sqrt(2)`.
    pub max_ratio: f64,
    /// Hard cap on inserted Steiner points.
    pub max_steiner: usize,
    /// Size floor: triangles whose shortest edge is already below this
    /// are never refined (counted unrefinable). This is the practical
    /// stand-in for Ruppert's boundary/encroachment rules: without
    /// constrained hull segments, interior insertions near the hull can
    /// cascade into ever-smaller slivers; the floor bounds total work by
    /// `area / min_edge²`. `0.0` disables the floor.
    pub min_edge: f64,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams {
            max_ratio: std::f64::consts::SQRT_2,
            max_steiner: 1_000_000,
            min_edge: 0.0,
        }
    }
}

impl RefineParams {
    /// Parameters adapted to a point set: size floor scaled so that at
    /// most on the order of `budget_per_point × n` triangles fit the
    /// input's bounding box, and the Steiner cap set to match.
    pub fn for_points(points: &[Point], budget_per_point: usize) -> RefineParams {
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let extent = ((max_x - min_x).max(max_y - min_y)).max(1e-9);
        let budget = (budget_per_point * points.len().max(1)) as f64;
        RefineParams {
            max_ratio: std::f64::consts::SQRT_2,
            max_steiner: budget as usize,
            // Floor ~4× below the uniform budget scale: fine enough to
            // fix the dense region's skinny triangles, coarse enough to
            // stop hull-fringe cascades before the Steiner cap.
            min_edge: 0.5 * extent / budget.sqrt().max(1.0),
        }
    }
}

/// Outcome of a refinement run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Reservation/commit rounds executed (parallel) or batches (seq).
    pub rounds: usize,
    /// Steiner points inserted.
    pub inserted: usize,
    /// Commit attempts that lost their reservations and retried.
    pub retries: usize,
    /// Triangles marked unrefinable (circumcenter in ghost territory).
    pub unrefinable: usize,
}

/// One planned circumcenter insertion.
struct Plan {
    center: Point,
    cavity: Cavity,
    /// Sorted affected triangle ids: cavity ∪ outer boundary neighbours.
    affected: Vec<u32>,
}

/// Is triangle `t` a refinement candidate?
fn is_skinny(mesh: &Triangulation, t: u32, params: &RefineParams, unref: &[bool]) -> bool {
    let tri = &mesh.tris[t as usize];
    if !tri.alive || mesh.touches_ghost(t) || unref.get(t as usize).copied().unwrap_or(false) {
        return false;
    }
    let [a, b, c] = mesh.corners(t);
    if params.min_edge > 0.0 {
        let shortest = a.dist(&b).min(b.dist(&c)).min(c.dist(&a));
        if shortest < params.min_edge {
            return false; // at the size floor: unrefinable by policy
        }
    }
    match radius_edge_ratio(&a, &b, &c) {
        Some(q) => q > params.max_ratio,
        None => false, // degenerate: leave alone
    }
}

/// Builds the insertion plan for skinny triangle `t`, or `None` if the
/// triangle must be marked unrefinable.
fn make_plan(mesh: &Triangulation, t: u32) -> Option<Plan> {
    // (t is also the unrefinable-marking key held by the caller.)
    let [a, b, c] = mesh.corners(t);
    let center = circumcenter(&a, &b, &c)?;
    let start = mesh.locate(&center, t);
    if mesh.touches_ghost(start) {
        return None; // boundary territory: unrefinable
    }
    let cavity = mesh.cavity(&center, start);
    if cavity.boundary.len() < 3 {
        return None;
    }
    let mut affected: Vec<u32> = cavity.tris.clone();
    affected.extend(
        cavity
            .boundary
            .iter()
            .filter(|&&(_, _, o, _)| o != NO_TRI)
            .map(|&(_, _, o, _)| o),
    );
    affected.sort_unstable();
    affected.dedup();
    Some(Plan {
        center,
        cavity,
        affected,
    })
}

/// Parallel Delaunay refinement. Returns statistics; the mesh is refined
/// in place and stays structurally valid and locally Delaunay.
pub fn refine(mesh: &mut Triangulation, params: RefineParams) -> RefineStats {
    let mut stats = RefineStats::default();
    let mut unref = vec![false; mesh.tris.len()];
    loop {
        if stats.inserted >= params.max_steiner {
            break;
        }
        unref.resize(mesh.tris.len(), false);
        // 1. Candidates, ascending id = deterministic priorities.
        let bad: Vec<u32> = (0..mesh.tris.len() as u32)
            .into_par_iter()
            .filter(|&t| is_skinny(mesh, t, &params, &unref))
            .collect();
        if bad.is_empty() {
            break;
        }
        stats.rounds += 1;
        // 2. Plans (read-only on the mesh).
        let plans: Vec<(usize, Option<Plan>)> = bad
            .par_iter()
            .enumerate()
            .map(|(i, &t)| (i, make_plan(mesh, t)))
            .collect();
        // Mark unrefinable sources.
        for (_, p) in plans.iter().filter(|(_, p)| p.is_none()) {
            let _ = p;
        }
        let mut live_plans: Vec<(usize, Plan)> = Vec::with_capacity(plans.len());
        for (i, p) in plans {
            match p {
                Some(plan) => live_plans.push((i, plan)),
                None => {
                    unref[bad[i as usize] as usize] = true;
                    stats.unrefinable += 1;
                }
            }
        }
        if live_plans.is_empty() {
            continue;
        }
        // 3. Reserve.
        let station = ReservationStation::new(mesh.tris.len());
        live_plans.par_iter().for_each(|(i, plan)| {
            for &c in &plan.affected {
                station.reserve(c as usize, *i);
            }
        });
        // 4. Winners + deterministic id assignment.
        let winners: Vec<&(usize, Plan)> = live_plans
            .par_iter()
            .filter(|(i, plan)| plan.affected.iter().all(|&c| station.holds(c as usize, *i)))
            .collect();
        stats.retries += live_plans.len() - winners.len();
        if winners.is_empty() {
            // Cannot happen: the lowest-priority plan always holds all its
            // reservations. Guard anyway to avoid an infinite loop.
            break;
        }
        let tri_base = mesh.tris.len();
        let point_base = mesh.points.len();
        let mut tri_offsets = Vec::with_capacity(winners.len());
        let mut acc = tri_base;
        for (_, plan) in winners.iter() {
            tri_offsets.push(acc);
            acc += plan.cavity.boundary.len();
        }
        // 5. Apply in parallel through raw views.
        mesh.tris.resize(
            acc,
            Tri {
                v: [0; 3],
                nbr: [NO_TRI; 3],
                alive: false,
            },
        );
        mesh.points
            .resize(point_base + winners.len(), Point::default());
        {
            let tris_view = SharedMutSlice::new(&mut mesh.tris);
            let pts_view = SharedMutSlice::new(&mut mesh.points);
            winners.par_iter().enumerate().for_each(|(w, (_, plan))| {
                let p_idx = (point_base + w) as u32;
                // SAFETY: slot p_idx is written by exactly this winner.
                unsafe { pts_view.write(p_idx as usize, plan.center) };
                apply_cavity_raw(&tris_view, plan, p_idx, tri_offsets[w] as u32);
            });
        }
        stats.inserted += winners.len();
        unref.resize(mesh.tris.len(), false);
    }
    stats
}

/// The parallel-safe version of [`Triangulation::apply_cavity`]: all
/// mutated triangle slots are either in the winner's reserved affected
/// set or in its exclusively assigned fresh range.
fn apply_cavity_raw(tris: &SharedMutSlice<'_, Tri>, plan: &Plan, p_idx: u32, base: u32) {
    let boundary = &plan.cavity.boundary;
    let k = boundary.len() as u32;
    // Kill the cavity.
    for &t in &plan.cavity.tris {
        // SAFETY: t is reserved by this winner.
        unsafe { tris.get_mut(t as usize).alive = false };
    }
    // Chain boundary cycle.
    let mut next_edge = std::collections::HashMap::with_capacity(boundary.len());
    for &(a, b, o, oslot) in boundary {
        next_edge.insert(a, (b, o, oslot));
    }
    let start = boundary[0].0;
    let mut a = start;
    for i in 0..k {
        let (b, o, oslot) = next_edge[&a];
        let t_id = base + i;
        let nxt = base + (i + 1) % k;
        let prv = base + (i + k - 1) % k;
        // SAFETY: t_id is in this winner's fresh range.
        unsafe {
            *tris.get_mut(t_id as usize) = Tri {
                v: [p_idx, a, b],
                nbr: [o, nxt, prv],
                alive: true,
            };
        }
        if o != NO_TRI {
            // SAFETY: o is in the reserved affected set.
            unsafe { tris.get_mut(o as usize).nbr[oslot as usize] = t_id };
        }
        a = b;
    }
    debug_assert_eq!(a, start, "boundary cycle did not close");
}

/// Sequential refinement baseline: processes the current skinny set in id
/// order, one cavity at a time.
pub fn refine_seq(mesh: &mut Triangulation, params: RefineParams) -> RefineStats {
    let mut stats = RefineStats::default();
    let mut unref = vec![false; mesh.tris.len()];
    loop {
        if stats.inserted >= params.max_steiner {
            break;
        }
        unref.resize(mesh.tris.len(), false);
        let bad: Vec<u32> = (0..mesh.tris.len() as u32)
            .filter(|&t| is_skinny(mesh, t, &params, &unref))
            .collect();
        if bad.is_empty() {
            break;
        }
        stats.rounds += 1;
        for t in bad {
            unref.resize(mesh.tris.len(), false);
            if !is_skinny(mesh, t, &params, &unref) {
                continue; // killed or fixed by an earlier insertion
            }
            match make_plan(mesh, t) {
                Some(plan) => {
                    let p_idx = mesh.points.len() as u32;
                    mesh.points.push(plan.center);
                    mesh.apply_cavity(p_idx, &plan.cavity);
                    stats.inserted += 1;
                    if stats.inserted >= params.max_steiner {
                        return stats;
                    }
                }
                None => {
                    unref[t as usize] = true;
                    stats.unrefinable += 1;
                }
            }
        }
    }
    stats
}

/// Counts alive, non-ghost triangles that remain refinable under
/// `params` (used by tests and the harness to verify the refinement
/// postcondition — a correct run leaves at most `stats.unrefinable`).
pub fn count_skinny(mesh: &Triangulation, params: &RefineParams) -> usize {
    let none = vec![false; mesh.tris.len()];
    (0..mesh.tris.len() as u32)
        .into_par_iter()
        .filter(|&t| is_skinny(mesh, t, params, &none))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delaunay::delaunay;
    use crate::point::{kuzmin_points, uniform_points};

    fn check_refined(mesh: &Triangulation, stats: &RefineStats, params: &RefineParams) {
        mesh.check_valid();
        assert!(
            stats.inserted < params.max_steiner,
            "hit the Steiner cap ({} inserted)",
            stats.inserted
        );
        let skinny = count_skinny(mesh, params);
        assert!(
            skinny <= stats.unrefinable,
            "skinny {} > unrefinable {}",
            skinny,
            stats.unrefinable
        );
        assert!(stats.inserted > 0, "refinement did nothing");
    }

    #[test]
    fn seq_refine_improves_quality() {
        let pts = kuzmin_points(200, 1);
        let params = RefineParams::for_points(&pts, 40);
        let mut mesh = delaunay(&pts);
        let before = count_skinny(&mesh, &params);
        assert!(before > 0, "input has no skinny triangles to fix");
        let stats = refine_seq(&mut mesh, params);
        check_refined(&mesh, &stats, &params);
    }

    #[test]
    fn par_refine_improves_quality() {
        let pts = kuzmin_points(200, 2);
        let params = RefineParams::for_points(&pts, 40);
        let mut mesh = delaunay(&pts);
        let stats = refine(&mut mesh, params);
        check_refined(&mesh, &stats, &params);
    }

    #[test]
    fn par_refine_uniform_points() {
        let pts = uniform_points(300, 3);
        let params = RefineParams::for_points(&pts, 40);
        let mut mesh = delaunay(&pts);
        let stats = refine(&mut mesh, params);
        check_refined(&mesh, &stats, &params);
    }

    #[test]
    fn refined_mesh_is_locally_delaunay() {
        // Every insertion maintains the empty-circumcircle property, so a
        // full Delaunay check must pass on the refined mesh too.
        let pts = uniform_points(80, 4);
        let params = RefineParams::for_points(&pts, 40);
        let mut mesh = delaunay(&pts);
        refine(&mut mesh, params);
        mesh.check_valid();
        mesh.check_delaunay();
    }

    #[test]
    fn steiner_cap_is_respected() {
        let pts = kuzmin_points(300, 5);
        let mut mesh = delaunay(&pts);
        let params = RefineParams {
            max_ratio: 1.0,
            max_steiner: 10,
            min_edge: 0.0,
        };
        let stats = refine(&mut mesh, params);
        // One round's winners may overshoot the cap slightly; never by
        // more than the final round's batch.
        assert!(
            stats.inserted <= 10 + 512,
            "cap grossly exceeded: {}",
            stats.inserted
        );
        mesh.check_valid();
    }

    #[test]
    fn par_and_seq_reach_equivalent_quality() {
        let pts = kuzmin_points(150, 6);
        let params = RefineParams::for_points(&pts, 40);
        let mut m1 = delaunay(&pts);
        let mut m2 = delaunay(&pts);
        let s1 = refine(&mut m1, params);
        let s2 = refine_seq(&mut m2, params);
        check_refined(&m1, &s1, &params);
        check_refined(&m2, &s2, &params);
    }

    #[test]
    fn size_floor_bounds_insertions() {
        // A coarse floor must terminate quickly even at an aggressive
        // quality bound.
        let pts = kuzmin_points(100, 7);
        let params = RefineParams {
            max_ratio: 1.0,
            max_steiner: 100_000,
            min_edge: 0.5,
        };
        let mut mesh = delaunay(&pts);
        let stats = refine(&mut mesh, params);
        assert!(
            stats.inserted < 20_000,
            "floor failed to bound work: {}",
            stats.inserted
        );
        mesh.check_valid();
    }
}
