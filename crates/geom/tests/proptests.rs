//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rpb_geom::predicates::*;
use rpb_geom::{delaunay, Point};

fn finite_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Orientation is antisymmetric under swapping two points.
    #[test]
    fn orient2d_antisymmetric(a in finite_point(), b in finite_point(), c in finite_point()) {
        let d1 = orient2d(&a, &b, &c);
        let d2 = orient2d(&b, &a, &c);
        prop_assert!((d1 + d2).abs() <= 1e-6 * d1.abs().max(d2.abs()).max(1e-300));
    }

    /// Orientation is invariant under cyclic rotation of the arguments.
    #[test]
    fn orient2d_cyclic(a in finite_point(), b in finite_point(), c in finite_point()) {
        let d1 = orient2d(&a, &b, &c);
        let d2 = orient2d(&b, &c, &a);
        prop_assert!((d1 - d2).abs() <= 1e-6 * d1.abs().max(1.0));
    }

    /// The circumcenter is equidistant from all three vertices.
    #[test]
    fn circumcenter_equidistant(a in finite_point(), b in finite_point(), c in finite_point()) {
        if let Some(cc) = circumcenter(&a, &b, &c) {
            let (ra, rb, rc) = (cc.dist(&a), cc.dist(&b), cc.dist(&c));
            let r = ra.max(rb).max(rc).max(1e-12);
            // Relative tolerance loosens for near-degenerate triangles.
            let slack = 1e-6 * r * (1.0 + r / orient2d(&a, &b, &c).abs().max(1e-12));
            prop_assert!((ra - rb).abs() <= slack, "ra={ra} rb={rb}");
            prop_assert!((ra - rc).abs() <= slack, "ra={ra} rc={rc}");
        }
    }

    /// The triangle's own vertices are never strictly inside its
    /// circumcircle.
    #[test]
    fn vertices_not_inside_own_circle(
        a in finite_point(), b in finite_point(), c in finite_point(),
    ) {
        let (a, b, c) = if ccw(&a, &b, &c) { (a, b, c) } else { (a, c, b) };
        prop_assert!(!in_circumcircle(&a, &b, &c, &a));
        prop_assert!(!in_circumcircle(&a, &b, &c, &b));
        prop_assert!(!in_circumcircle(&a, &b, &c, &c));
    }

    /// Delaunay triangulation of random point sets is structurally valid
    /// and satisfies the empty-circle property.
    #[test]
    fn delaunay_on_random_points(seed in any::<u64>(), n in 4usize..60) {
        let pts = rpb_geom::point::uniform_points(n, seed);
        let mesh = delaunay(&pts);
        mesh.check_valid();
        mesh.check_delaunay();
        // Euler: all points interior to the super triangle.
        prop_assert_eq!(mesh.num_alive(), 2 * (n + 3) - 5);
    }
}
